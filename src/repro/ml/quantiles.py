"""Scalar percentiles, bit-identical to ``np.percentile`` but ~10× cheaper.

``np.percentile`` costs ~100 µs per call on small windows — array
conversion, axis handling, partition, and ufunc dispatch — and the
runtime calls it several times per learning epoch (three per feature
vector, once per SLO window).  These helpers reproduce numpy's default
``linear`` interpolation *exactly* — same ``q/100 * (n-1)`` virtual
index, same two-sided lerp (``a + (b-a)t`` below the midpoint,
``b - (b-a)(1-t)`` at or above it), same IEEE-754 operation order — so
swapping them in cannot perturb a single result bit.  The equivalence is
pinned against numpy by ``tests/ml/test_quantiles.py`` over randomized
inputs.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["percentile_of_sorted", "percentile"]


def percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    """Percentile ``q`` (in [0, 100]) of an already-sorted sequence.

    Use this form to amortize one sort across several percentiles of the
    same window.  ``ordered`` may be a sorted list or a sorted 1-D numpy
    array; the result equals ``float(np.percentile(values, q))``.
    """
    n = len(ordered)
    if n == 0:
        raise ValueError("no samples")
    virtual = q / 100.0 * (n - 1)
    previous = math.floor(virtual)
    if previous < 0:
        previous = 0
    elif previous > n - 1:
        previous = n - 1
    nxt = previous + 1
    if nxt > n - 1:
        nxt = n - 1
    t = virtual - previous
    a = float(ordered[previous])
    b = float(ordered[nxt])
    diff = b - a
    if t >= 0.5:
        return b - diff * (1.0 - t)
    return a + diff * t


def percentile(samples: Sequence[float], q: float) -> float:
    """Percentile ``q`` of an unsorted sample sequence."""
    return percentile_of_sorted(sorted(samples), q)
