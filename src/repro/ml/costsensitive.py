"""Cost-sensitive one-against-all classification (VW ``csoaa`` reduction).

SmartHarvest "uses a cost-sensitive classifier from the VowpalWabbit
framework to predict the maximum number of CPU cores needed by the
primary VMs in the next 25 ms" (§5.2).  Cost-sensitivity matters because
the two error directions are asymmetric: under-predicting cores starves
the customer VM (expensive), over-predicting merely harvests less
(cheap).

This implementation mirrors VW's reduction: one online linear regressor
per class predicts that class's cost; inference picks the argmin.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.linear import OnlineLinearRegression

__all__ = ["CostSensitiveClassifier", "asymmetric_core_costs"]


def asymmetric_core_costs(
    true_class: int,
    n_classes: int,
    under_cost: float = 4.0,
    over_cost: float = 1.0,
) -> np.ndarray:
    """Cost vector for predicting each class when ``true_class`` is correct.

    Predicting ``k < true`` (undersupply) costs ``under_cost`` per missing
    core; ``k > true`` (oversupply) costs ``over_cost`` per extra core.
    This is the asymmetry that makes SmartHarvest conservative.
    """
    if not 0 <= true_class < n_classes:
        raise ValueError(f"true_class {true_class} out of [0, {n_classes})")
    classes = np.arange(n_classes)
    costs = np.where(
        classes < true_class,
        under_cost * (true_class - classes),
        over_cost * (classes - true_class),
    )
    return costs.astype(float)


class CostSensitiveClassifier:
    """Multiclass cost-sensitive learner: per-class cost regressors.

    Args:
        n_classes: number of classes (for SmartHarvest, cores 0..N).
        n_features: feature dimensionality.
        learning_rate / l2: passed to each per-class regressor.
    """

    def __init__(
        self,
        n_classes: int,
        n_features: int,
        learning_rate: float = 0.05,
        l2: float = 0.0,
    ) -> None:
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_classes = n_classes
        self.n_features = n_features
        self._regressors = [
            OnlineLinearRegression(
                n_features, learning_rate=learning_rate, l2=l2
            )
            for _ in range(n_classes)
        ]
        self.updates = 0

    def predicted_costs(self, features: Sequence[float]) -> np.ndarray:
        """Predicted cost of choosing each class."""
        return np.array(
            [regressor.predict(features) for regressor in self._regressors]
        )

    def predict(self, features: Sequence[float]) -> int:
        """The class with minimum predicted cost (ties → lowest class)."""
        return int(np.argmin(self.predicted_costs(features)))

    def update(
        self, features: Sequence[float], costs: Sequence[float]
    ) -> None:
        """Train all per-class regressors on an observed cost vector."""
        costs = np.asarray(costs, dtype=float)
        if costs.shape != (self.n_classes,):
            raise ValueError(
                f"expected {self.n_classes} costs, got shape {costs.shape}"
            )
        for regressor, cost in zip(self._regressors, costs):
            regressor.update(features, float(cost))
        self.updates += 1
