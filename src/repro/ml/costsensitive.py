"""Cost-sensitive one-against-all classification (VW ``csoaa`` reduction).

SmartHarvest "uses a cost-sensitive classifier from the VowpalWabbit
framework to predict the maximum number of CPU cores needed by the
primary VMs in the next 25 ms" (§5.2).  Cost-sensitivity matters because
the two error directions are asymmetric: under-predicting cores starves
the customer VM (expensive), over-predicting merely harvests less
(cheap).

This implementation mirrors VW's reduction — one online linear cost
model per class, inference picks the argmin — but stores every class's
weights in a single ``(n_classes, n_features + 1)`` matrix (last column
is the per-class bias) instead of one ``OnlineLinearRegression`` object
per class.  Predict is one pass of per-row dot products + argmin; update
is one rank-1 outer-product SGD step.  This removes the seed's per-class
Python dispatch (method calls, ``asarray``/shape checks, list building)
from a loop that runs every 25 ms learning epoch, fleet-wide.

**Bit-identity contract.**  Every digest and golden test pins results to
the seed, so each row's arithmetic must reproduce the per-class
``OnlineLinearRegression`` exactly:

* Each row's prediction uses the *same* BLAS dot primitive the seed used
  (``ndarray.dot`` on a contiguous row).  A whole-matrix GEMV is **not**
  usable here: BLAS ``dgemv`` blocks its reduction differently from
  ``ddot`` (measured on this container's OpenBLAS: ~97% of random 9×9
  inputs differ in the last ulp), which would flip digests.  The bound
  row-``dot`` loop keeps the seed's IEEE operation order per row while
  amortizing everything else.
* The rank-1 weight update applies the same elementwise operations in
  the same order as the seed's per-class step (multiply by the clipped
  error, then by the learning rate, then subtract), so it is
  bit-identical regardless of BLAS — elementwise ufuncs have no
  reduction order.

``tests/ml/test_vectorized_bit_identity.py`` drives this class and the
frozen per-class copy (:mod:`repro.perf.legacy_ml`) with identical
random streams for a thousand epochs and requires exact equality of
predictions, weights, and update counters.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["CostSensitiveClassifier", "asymmetric_core_costs"]


def asymmetric_core_costs(
    true_class: int,
    n_classes: int,
    under_cost: float = 4.0,
    over_cost: float = 1.0,
) -> np.ndarray:
    """Cost vector for predicting each class when ``true_class`` is correct.

    Predicting ``k < true`` (undersupply) costs ``under_cost`` per missing
    core; ``k > true`` (oversupply) costs ``over_cost`` per extra core.
    This is the asymmetry that makes SmartHarvest conservative.
    """
    if not 0 <= true_class < n_classes:
        raise ValueError(f"true_class {true_class} out of [0, {n_classes})")
    classes = np.arange(n_classes)
    costs = np.where(
        classes < true_class,
        under_cost * (true_class - classes),
        over_cost * (classes - true_class),
    )
    return costs.astype(float)


class CostSensitiveClassifier:
    """Multiclass cost-sensitive learner over one shared weight matrix.

    Args:
        n_classes: number of classes (for SmartHarvest, cores 0..N).
        n_features: feature dimensionality (bias handled internally).
        learning_rate: SGD step size, shared by all classes.
        l2: L2 regularization strength applied at each step.
        clip_gradient: per-step cap on each class's error magnitude
            (the §3.2 bad-data guard); ``None`` disables clipping.

    Attributes:
        weights: the ``(n_classes, n_features + 1)`` parameter matrix;
            column ``n_features`` is the per-class bias.  Read-only for
            callers: the classifier mutates it in place (rows are
            stable views for its lifetime) and caches the bias column
            as Python floats between updates, so an external write
            would leave predictions using stale biases.
        updates: number of :meth:`update` calls applied.
    """

    def __init__(
        self,
        n_classes: int,
        n_features: int,
        learning_rate: float = 0.05,
        l2: float = 0.0,
        clip_gradient: Optional[float] = 100.0,
    ) -> None:
        if n_classes < 2:
            raise ValueError("need at least two classes")
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.n_classes = n_classes
        self.n_features = n_features
        self.learning_rate = learning_rate
        self.l2 = l2
        self.clip_gradient = clip_gradient
        self.updates = 0

        self.weights = np.zeros((n_classes, n_features + 1))
        # Stable views into the matrix.  The bound row ``.dot`` methods
        # skip per-call slicing and attribute lookup in the hot loop;
        # they stay valid because all updates are in place.
        self._w = self.weights[:, :n_features]
        self._bias = self.weights[:, n_features]
        self._row_dots = [
            self.weights[i, :n_features].dot for i in range(n_classes)
        ]
        # Python-float bias mirror: predict/update combine each row's
        # dot and bias in scalar float arithmetic (exactly the seed's
        # ``w @ x + b``), and a list avoids n_classes np.float64 boxings
        # per call.  Refreshed after every update.
        self._bias_list = self._bias.tolist()
        # Per-update scratch (rank-1 step and clipped error vector).
        self._step = np.empty((n_classes, n_features))
        self._errors = np.empty(n_classes)
        self._errors_col = self._errors.reshape(n_classes, 1)
        self._l2_scratch = np.empty((n_classes, n_features))

    def predicted_costs(self, features: Sequence[float]) -> np.ndarray:
        """Predicted cost of choosing each class."""
        x = self._check(features)
        bias = self._bias_list
        return np.array(
            [float(dot(x)) + bias[i] for i, dot in enumerate(self._row_dots)]
        )

    def predict(self, features: Sequence[float]) -> int:
        """The class with minimum predicted cost (ties → lowest class)."""
        x = self._check(features)
        bias = self._bias_list
        best = np.inf
        best_class = 0
        i = 0
        for dot in self._row_dots:
            cost = float(dot(x)) + bias[i]
            if cost != cost:  # np.argmin lets the first NaN win
                return i
            if cost < best:
                best = cost
                best_class = i
            i += 1
        return best_class

    def update(
        self, features: Sequence[float], costs: Sequence[float]
    ) -> None:
        """One rank-1 SGD step toward an observed cost vector."""
        x = self._check(features)
        costs = np.asarray(costs, dtype=float)
        if costs.shape != (self.n_classes,):
            raise ValueError(
                f"expected {self.n_classes} costs, got shape {costs.shape}"
            )
        # Per-row error in scalar float arithmetic — the exact ops the
        # seed's per-class regressors performed, including the scalar
        # min/max clip (which also preserves NaN propagation).
        bias = self._bias_list
        cost_list = costs.tolist()
        clip = self.clip_gradient
        errors = self._errors
        i = 0
        for dot in self._row_dots:
            error = float(dot(x)) + bias[i] - cost_list[i]
            if clip is not None:
                if error > clip:
                    error = clip
                elif error < -clip:
                    error = -clip
            errors[i] = error
            i += 1
        step = self._step
        if self.l2:
            # weights -= lr * (error * x + l2 * weights), elementwise in
            # the seed's operand order.
            np.multiply(self._errors_col, x, out=step)
            np.multiply(self._w, self.l2, out=self._l2_scratch)
            step += self._l2_scratch
            step *= self.learning_rate
            self._w -= step
        else:
            # l2 == 0 contributes an exact ±0.0 per element, so dropping
            # the term is bit-identical (same reasoning as the seed's
            # OnlineLinearRegression fast path).
            np.multiply(self._errors_col, x, out=step)
            step *= self.learning_rate
            self._w -= step
        np.multiply(errors, self.learning_rate, out=errors)
        self._bias -= errors
        self._bias_list = self._bias.tolist()
        self.updates += 1

    def _check(self, features: Sequence[float]) -> np.ndarray:
        x = np.asarray(features, dtype=float)
        if x.shape != (self.n_features,):
            raise ValueError(
                f"expected {self.n_features} features, got shape {x.shape}"
            )
        return x
