"""Distributional feature extraction from telemetry sample windows.

SmartHarvest "collects VM CPU usage data from the hypervisor every 50 µs
and computes distributional features over this data as input to the
model" (§5.2).  This module computes that feature vector from a window of
usage samples.

The extraction runs once per 25 ms learning epoch per harvest agent, so
it is engineered as a single-allocation pass:

* ``mean``/``std`` share one sum: the standard deviation is computed by
  replaying numpy's own ``_var`` pipeline (sum → divide → subtract →
  square → sum → divide → sqrt) on top of the already-computed mean,
  which is bit-identical to ``samples.std()`` while skipping ``std``'s
  internal re-derivation of the mean.  ``np.add.reduce`` is the exact
  primitive ``np.mean`` reduces with, so calling it directly drops the
  ufunc-dispatch wrapper without perturbing a bit.
* the three percentiles and both extremes share one sort, performed
  in a reusable scratch buffer (``ndarray.sort`` on a copy produces
  the same values as ``np.sort``).
* a :class:`FeatureExtractor` owns the scratch buffers so per-epoch
  callers (``HarvestModel``) allocate only the 9-float output vector,
  which must stay fresh per call — feature vectors outlive the epoch
  that computed them (the classifier trains on the *previous* epoch's
  features).

``distributional_features`` remains the stateless entry point; it uses a
module-level extractor (the simulator is single-threaded per process).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ml.quantiles import percentile_of_sorted

__all__ = ["FEATURE_NAMES", "FeatureExtractor", "distributional_features"]

#: Order of the features returned by :func:`distributional_features`.
FEATURE_NAMES: List[str] = [
    "mean",
    "std",
    "minimum",
    "p50",
    "p90",
    "p99",
    "maximum",
    "last",
    "trend",
]

_sum = np.add.reduce


class FeatureExtractor:
    """Reusable-scratch distributional feature extraction.

    One instance per hot-path caller; scratch buffers grow to the
    largest window seen and are reused across calls.  Output vectors
    are freshly allocated each call (callers retain them across epochs).
    """

    def __init__(self) -> None:
        self._scratch = np.empty(0)

    def __call__(self, samples: np.ndarray) -> np.ndarray:
        """Summarize a telemetry window into a fixed-length feature vector.

        Features (in :data:`FEATURE_NAMES` order): mean, standard
        deviation, min, median, P90, P99, max, most-recent sample, and a
        linear trend (second-half mean minus first-half mean, capturing
        a demand ramp).

        Args:
            samples: 1-D array of usage samples, oldest first.

        Raises:
            ValueError: on an empty window — the caller must guard,
                because an empty window means data collection failed and
                validation should have caught it.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1 or samples.size == 0:
            raise ValueError("need a non-empty 1-D sample window")
        n = samples.size
        half = n // 2
        if half > 0:
            trend = float(
                _sum(samples[half:]) / (n - half)
                - _sum(samples[:half]) / half
            )
        else:
            trend = 0.0
        if self._scratch.size < 2 * n:
            self._scratch = np.empty(2 * n)
        mean = _sum(samples) / n
        # numpy's _var pipeline on top of the shared mean: deviations,
        # squared in place, averaged, rooted.  Bit-identical to
        # samples.std() (pinned by tests/ml/test_features.py).
        deviations = self._scratch[:n]
        np.subtract(samples, mean, out=deviations)
        np.multiply(deviations, deviations, out=deviations)
        std = np.sqrt(_sum(deviations) / n)
        # One sort amortized over the three percentiles (sorted extremes
        # are free), performed in the reusable scratch.
        ordered = self._scratch[n:2 * n]
        ordered[:] = samples
        ordered.sort()
        out = np.empty(len(FEATURE_NAMES))
        out[0] = mean
        out[1] = std
        out[2] = ordered[0]
        out[3] = percentile_of_sorted(ordered, 50)
        out[4] = percentile_of_sorted(ordered, 90)
        out[5] = percentile_of_sorted(ordered, 99)
        out[6] = ordered[-1]
        out[7] = samples[-1]
        out[8] = trend
        return out


_DEFAULT_EXTRACTOR = FeatureExtractor()


def distributional_features(samples: np.ndarray) -> np.ndarray:
    """Summarize a telemetry window (see :class:`FeatureExtractor`)."""
    return _DEFAULT_EXTRACTOR(samples)
