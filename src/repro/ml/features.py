"""Distributional feature extraction from telemetry sample windows.

SmartHarvest "collects VM CPU usage data from the hypervisor every 50 µs
and computes distributional features over this data as input to the
model" (§5.2).  This module computes that feature vector from a window of
usage samples.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ml.quantiles import percentile_of_sorted

__all__ = ["FEATURE_NAMES", "distributional_features"]

#: Order of the features returned by :func:`distributional_features`.
FEATURE_NAMES: List[str] = [
    "mean",
    "std",
    "minimum",
    "p50",
    "p90",
    "p99",
    "maximum",
    "last",
    "trend",
]


def distributional_features(samples: np.ndarray) -> np.ndarray:
    """Summarize a telemetry window into a fixed-length feature vector.

    Features (in :data:`FEATURE_NAMES` order): mean, standard deviation,
    min, median, P90, P99, max, most-recent sample, and a linear trend
    (second-half mean minus first-half mean, capturing a demand ramp).

    Args:
        samples: 1-D array of usage samples, oldest first.

    Raises:
        ValueError: on an empty window — the caller must guard, because
            an empty window means data collection failed and validation
            should have caught it.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("need a non-empty 1-D sample window")
    half = samples.size // 2
    if half > 0:
        trend = float(samples[half:].mean() - samples[:half].mean())
    else:
        trend = 0.0
    # One sort amortized over the three percentiles (sorted extremes are
    # free); this runs once per learning epoch per harvest agent and was
    # a top-five cost in the seed fleet profile.
    ordered = np.sort(samples)
    return np.array(
        [
            float(samples.mean()),
            float(samples.std()),
            float(ordered[0]),
            percentile_of_sorted(ordered, 50),
            percentile_of_sorted(ordered, 90),
            percentile_of_sorted(ordered, 99),
            float(ordered[-1]),
            float(samples[-1]),
            trend,
        ]
    )
