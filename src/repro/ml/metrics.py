"""Streaming metrics used by model-assessment safeguards.

The paper's ``AssessModel`` functions all reduce to "track a quality
statistic over a recent horizon and compare to a threshold":

* SmartOverclock averages the reward gap Δr over the last 10 epochs;
* SmartHarvest measures the recent fraction of epochs where predictions
  starved the primary VM;
* SmartMemory estimates the recent fraction of accesses its scan rates
  missed.

These helpers implement those horizon statistics once, correctly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

__all__ = ["RollingMean", "RollingRate", "StreamingMeanVar", "Ewma"]


class RollingMean:
    """Mean over the last ``window`` observations.

    ``mean`` is ``None`` until ``min_count`` observations have arrived, so
    safeguards don't fire off a single noisy epoch.
    """

    def __init__(self, window: int, min_count: int = 1) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= min_count <= window:
            raise ValueError("need 1 <= min_count <= window")
        self.window = window
        self.min_count = min_count
        self._values: Deque[float] = deque(maxlen=window)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if len(self._values) == self.window:
            self._sum -= self._values[0]
        self._values.append(float(value))
        self._sum += float(value)

    @property
    def mean(self) -> Optional[float]:
        if len(self._values) < self.min_count:
            return None
        return self._sum / len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def reset(self) -> None:
        self._values.clear()
        self._sum = 0.0


class RollingRate(RollingMean):
    """Fraction of ``True`` over the last ``window`` boolean observations."""

    def observe(self, value: bool) -> None:  # type: ignore[override]
        super().observe(1.0 if value else 0.0)

    @property
    def rate(self) -> Optional[float]:
        return self.mean


class StreamingMeanVar:
    """Welford's online mean/variance (numerically stable)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return self.variance**0.5


class Ewma:
    """Exponentially weighted moving average.

    Args:
        alpha: weight of the newest observation, in (0, 1].
    """

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value: Optional[float] = None

    def observe(self, value: float) -> float:
        if self._value is None:
            self._value = float(value)
        else:
            self._value += self.alpha * (float(value) - self._value)
        return self._value

    @property
    def value(self) -> Optional[float]:
        return self._value
