"""Thompson sampling with Beta priors — SmartMemory's model (§5.3).

The paper: "It uses Thompson Sampling with a Beta distribution prior, a
well-known multi-armed bandit algorithm...  The agent learns the best
scanning frequency for each 2 MB region of memory."

One :class:`BetaThompsonSampler` is instantiated per memory region; its
arms are the scan periods (300 ms … 9.6 s).  A reward of 1 means the
chosen period *well-sampled* the region (neither saturated nor empty).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["BetaThompsonSampler"]


class BetaThompsonSampler:
    """Beta-Bernoulli Thompson sampling over a fixed arm set.

    Args:
        n_arms: number of arms.
        rng: random stream for posterior sampling.
        prior_alpha / prior_beta: Beta prior pseudo-counts (1, 1 = uniform).
    """

    def __init__(
        self,
        n_arms: int,
        rng: np.random.Generator,
        prior_alpha: float = 1.0,
        prior_beta: float = 1.0,
    ) -> None:
        if n_arms < 2:
            raise ValueError("need at least two arms")
        if prior_alpha <= 0 or prior_beta <= 0:
            raise ValueError("priors must be positive")
        self.n_arms = n_arms
        self.rng = rng
        self.alpha = np.full(n_arms, float(prior_alpha))
        self.beta = np.full(n_arms, float(prior_beta))
        self.pulls = np.zeros(n_arms, dtype=np.int64)

    def select_arm(self) -> int:
        """Draw one posterior sample per arm; play the argmax."""
        samples = self.rng.beta(self.alpha, self.beta)
        return int(np.argmax(samples))

    def update(self, arm: int, success: bool) -> None:
        """Record a Bernoulli outcome for ``arm``."""
        self._check_arm(arm)
        if success:
            self.alpha[arm] += 1.0
        else:
            self.beta[arm] += 1.0
        self.pulls[arm] += 1

    def update_weighted(self, arm: int, reward: float) -> None:
        """Record a fractional reward in [0, 1] as partial pseudo-counts.

        Used when an epoch yields a graded observation (e.g. mostly
        well-sampled scans with a few saturated ones).
        """
        self._check_arm(arm)
        if not 0.0 <= reward <= 1.0:
            raise ValueError(f"reward must be in [0, 1], got {reward}")
        self.alpha[arm] += reward
        self.beta[arm] += 1.0 - reward
        self.pulls[arm] += 1

    def mean_estimates(self) -> np.ndarray:
        """Posterior means per arm (diagnostics; not used for selection)."""
        return self.alpha / (self.alpha + self.beta)

    def _check_arm(self, arm: int) -> None:
        if not 0 <= arm < self.n_arms:
            raise ValueError(f"arm {arm} out of range [0, {self.n_arms})")
