"""Tabular Q-learning — SmartOverclock's model (§5.1).

The paper: "we created an intelligent on-node overclocking agent called
SmartOverclock, which uses Q-learning, a simple form of Reinforcement
Learning...  To balance exploitation of the policy learned so far with
exploration of new frequencies, the agent uses the action selected by the
RL policy 90% of the time and randomly picks a frequency 10% of the
time."

States are arbitrary hashable values (the agent discretizes its IPS/
frequency observations); actions are indices into a fixed action list.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["QLearner"]


class QLearner:
    """ε-greedy tabular Q-learning over hashable states.

    Args:
        n_actions: size of the action set.
        rng: random stream for exploration (and tie-breaking).
        learning_rate: Q-update step size (``α`` in the standard rule).
        discount: future-reward discount (``γ``).
        epsilon: exploration probability (0.1 in the paper).
        initial_q: optimistic initialization encourages early exploration.
    """

    def __init__(
        self,
        n_actions: int,
        rng: np.random.Generator,
        learning_rate: float = 0.2,
        discount: float = 0.6,
        epsilon: float = 0.1,
        initial_q: float = 0.0,
    ) -> None:
        if n_actions < 2:
            raise ValueError("need at least two actions")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must be in [0, 1)")
        self.n_actions = n_actions
        self.rng = rng
        self.learning_rate = learning_rate
        self.discount = discount
        self.epsilon = epsilon
        self.initial_q = initial_q
        self._q: Dict[Hashable, np.ndarray] = {}
        self.updates = 0
        self.explorations = 0

    # -- policy ------------------------------------------------------------

    def q_values(self, state: Hashable) -> np.ndarray:
        """The Q-row for ``state`` (created on first touch)."""
        if state not in self._q:
            self._q[state] = np.full(self.n_actions, self.initial_q)
        return self._q[state]

    def best_action(self, state: Hashable) -> int:
        """Greedy action (ties broken uniformly at random)."""
        q = self.q_values(state)
        best = np.flatnonzero(q == q.max())
        if best.size == 1:
            return int(best[0])
        return int(self.rng.choice(best))

    def select_action(self, state: Hashable) -> Tuple[int, bool]:
        """ε-greedy action; returns ``(action, explored)``.

        ``explored`` is ``True`` when the action came from the random
        10%, which the agent needs to know: the paper's model safeguard
        keeps exploring even while predictions are overridden.
        """
        if self.rng.random() < self.epsilon:
            self.explorations += 1
            return int(self.rng.integers(self.n_actions)), True
        return self.best_action(state), False

    # -- learning -------------------------------------------------------------

    def update(
        self,
        state: Hashable,
        action: int,
        reward: float,
        next_state: Optional[Hashable] = None,
    ) -> float:
        """Standard Q-learning update; returns the TD error.

        ``Q(s,a) += α · (r + γ·max_a' Q(s',a') − Q(s,a))``; a ``None``
        next state is terminal (no bootstrap term).
        """
        if not 0 <= action < self.n_actions:
            raise ValueError(f"action {action} out of range")
        q = self.q_values(state)
        bootstrap = 0.0
        if next_state is not None:
            bootstrap = float(self.q_values(next_state).max())
        td_error = reward + self.discount * bootstrap - q[action]
        q[action] += self.learning_rate * td_error
        self.updates += 1
        return float(td_error)

    # -- introspection -------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states touched so far."""
        return len(self._q)

    def greedy_policy(self) -> Dict[Hashable, int]:
        """Snapshot of the current greedy policy (for tests/diagnostics)."""
        return {state: int(np.argmax(row)) for state, row in self._q.items()}
