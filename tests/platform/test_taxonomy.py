"""Tests for the agent-characterization data (Tables 1-2)."""

import pytest

from repro.platform import (
    TABLE1_TAXONOMY,
    TABLE2_LEARNING_AGENTS,
    learning_beneficiary_fraction,
    render_table1,
    render_table2,
)


def test_census_totals_77_agents():
    assert sum(cls.count for cls in TABLE1_TAXONOMY) == 77


def test_six_classes():
    assert len(TABLE1_TAXONOMY) == 6
    names = {cls.name for cls in TABLE1_TAXONOMY}
    assert "Watchdogs" in names
    assert "Resource control" in names


def test_beneficiary_fraction_is_the_papers_35_percent():
    assert learning_beneficiary_fraction() == pytest.approx(27 / 77)
    assert round(learning_beneficiary_fraction() * 100) == 35


def test_beneficiary_classes_match_paper():
    beneficiaries = {
        cls.name for cls in TABLE1_TAXONOMY if cls.benefits_from_learning
    }
    assert beneficiaries == {
        "Monitoring/logging", "Watchdogs", "Resource control",
    }


def test_table2_has_six_example_agents():
    assert len(TABLE2_LEARNING_AGENTS) == 6
    names = [agent.name for agent in TABLE2_LEARNING_AGENTS]
    assert any("SmartHarvest" in name for name in names)
    assert any("SmartOverclock" in name for name in names)
    assert any("SmartMemory" in name for name in names)


def test_renderings_contain_key_rows():
    table1 = render_table1()
    assert "35%" in table1
    assert "Watchdogs" in table1
    table2 = render_table2()
    assert "Cost-sensitive classification" in table2
