"""Tests for SimQueue: FIFO order, timeouts, capacity-1 supersede semantics."""

import pytest

from repro.sim import Kernel, QUEUE_TIMEOUT, SimQueue
from repro.sim.units import MS, SEC


def run_consumer(kernel, queue, timeout_us, results):
    def consumer():
        item = yield from queue.get(timeout_us=timeout_us)
        results.append((kernel.now, item))

    kernel.spawn(consumer(), name="consumer")


def test_get_returns_item_already_queued():
    kernel = Kernel()
    queue = SimQueue(kernel)
    queue.put("x")
    results = []
    run_consumer(kernel, queue, None, results)
    kernel.run()
    assert results == [(0, "x")]


def test_get_blocks_until_put():
    kernel = Kernel()
    queue = SimQueue(kernel)
    results = []
    run_consumer(kernel, queue, None, results)
    kernel.call_later(7 * MS, lambda: queue.put("late"))
    kernel.run()
    assert results == [(7 * MS, "late")]


def test_get_times_out_with_sentinel():
    kernel = Kernel()
    queue = SimQueue(kernel)
    results = []
    run_consumer(kernel, queue, 5 * SEC, results)
    kernel.run()
    assert results == [(5 * SEC, QUEUE_TIMEOUT)]


def test_item_arriving_before_timeout_wins():
    kernel = Kernel()
    queue = SimQueue(kernel)
    results = []
    run_consumer(kernel, queue, 5 * SEC, results)
    kernel.call_later(1 * SEC, lambda: queue.put("fresh"))
    kernel.run()
    assert results == [(1 * SEC, "fresh")]


def test_timed_out_consumer_does_not_steal_later_item():
    kernel = Kernel()
    queue = SimQueue(kernel)
    results = []
    run_consumer(kernel, queue, 1 * MS, results)
    kernel.call_later(2 * MS, lambda: queue.put("after-timeout"))
    kernel.run()
    assert results == [(1 * MS, QUEUE_TIMEOUT)]
    assert len(queue) == 1  # the item is still there for the next get
    assert queue.try_get() == "after-timeout"


def test_fifo_order_across_multiple_items():
    kernel = Kernel()
    queue = SimQueue(kernel)
    for item in (1, 2, 3):
        queue.put(item)
    seen = [queue.try_get() for _ in range(3)]
    assert seen == [1, 2, 3]


def test_try_get_on_empty_returns_sentinel():
    kernel = Kernel()
    queue = SimQueue(kernel)
    assert queue.try_get() is QUEUE_TIMEOUT


def test_capacity_one_supersedes_oldest():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=1)
    queue.put("stale")
    queue.put("fresh")
    assert len(queue) == 1
    assert queue.dropped == 1
    assert queue.try_get() == "fresh"


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        SimQueue(Kernel(), capacity=0)


def test_two_consumers_fifo_wakeup():
    kernel = Kernel()
    queue = SimQueue(kernel)
    results = []

    def consumer(tag):
        item = yield from queue.get()
        results.append((tag, item))

    kernel.spawn(consumer("first"), name="c1")
    kernel.spawn(consumer("second"), name="c2")
    kernel.call_later(1 * MS, lambda: queue.put("a"))
    kernel.call_later(2 * MS, lambda: queue.put("b"))
    kernel.run()
    assert results == [("first", "a"), ("second", "b")]


def test_clear_reports_dropped_count():
    kernel = Kernel()
    queue = SimQueue(kernel)
    queue.put(1)
    queue.put(2)
    assert queue.clear() == 2
    assert len(queue) == 0


def test_none_is_a_valid_message_distinct_from_timeout():
    kernel = Kernel()
    queue = SimQueue(kernel)
    queue.put(None)
    results = []
    run_consumer(kernel, queue, 1 * MS, results)
    kernel.run()
    assert results == [(0, None)]
    assert results[0][1] is not QUEUE_TIMEOUT


def test_killed_waiter_does_not_swallow_later_puts():
    """A consumer killed mid-get must deregister its waiter.

    Regression test for the crash-restart fault: without the kill-path
    cleanup in ``SimQueue.get`` the dead consumer's event stays in the
    getter list, and the first ``put`` after a replacement consumer
    arrives succeeds the dead event — the item vanishes.
    """
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=1)
    got = []

    def consumer(tag):
        item = yield from queue.get(timeout_us=50 * MS)
        got.append((tag, item))

    old = kernel.spawn(consumer("old"), name="old")

    def script():
        yield 1 * MS
        old.kill()
        kernel.spawn(consumer("new"), name="new")
        yield 1 * MS
        queue.put("fresh")

    kernel.spawn(script(), name="script")
    kernel.run(until=10 * MS)
    assert got == [("new", "fresh")]
    assert len(queue._getters) == 0
