"""Tests for time-unit helpers."""

import pytest

from repro.sim.units import MINUTE, MS, SEC, format_duration, from_seconds, to_seconds


def test_constants_relationships():
    assert SEC == 1000 * MS
    assert MINUTE == 60 * SEC


def test_round_trip_conversion():
    assert to_seconds(from_seconds(2.5)) == pytest.approx(2.5)
    assert from_seconds(0.000001) == 1


def test_negative_seconds_rejected():
    with pytest.raises(ValueError):
        from_seconds(-0.1)


def test_format_duration_bands():
    assert format_duration(500) == "500us"
    assert format_duration(2 * MS) == "2.000ms"
    assert format_duration(3 * SEC + 500 * MS) == "3.500s"
