"""Tests for reproducible named RNG streams."""

import numpy as np
import pytest

from repro.sim import RngStreams, stable_hash


def test_same_seed_same_name_same_draws():
    a = RngStreams(7).get("workload")
    b = RngStreams(7).get("workload")
    assert np.array_equal(a.random(16), b.random(16))


def test_different_names_are_independent():
    streams = RngStreams(7)
    a = streams.get("a").random(16)
    b = streams.get("b").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1).get("x").random(8)
    b = RngStreams(2).get("x").random(8)
    assert not np.array_equal(a, b)


def test_repeated_get_returns_same_generator():
    streams = RngStreams(3)
    assert streams.get("s") is streams.get("s")


def test_drawing_from_one_stream_does_not_disturb_another():
    isolated = RngStreams(11)
    expected = isolated.get("target").random(8)

    mixed = RngStreams(11)
    mixed.get("noise").random(1000)  # interleaved draws elsewhere
    actual = mixed.get("target").random(8)
    assert np.array_equal(expected, actual)


def test_fork_namespaces_streams():
    streams = RngStreams(5)
    child = streams.fork("region-0")
    direct = RngStreams(5).get("region-0.arm")
    assert np.array_equal(child.get("arm").random(4), direct.random(4))


def test_fork_of_fork_composes_prefixes():
    streams = RngStreams(5)
    grandchild = streams.fork("a").fork("b")
    direct = RngStreams(5).get("a.b.x")
    assert np.array_equal(grandchild.get("x").random(4), direct.random(4))


def test_stable_hash_is_deterministic_and_distinct():
    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash("abc") != stable_hash("abd")


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngStreams("42")  # type: ignore[arg-type]
