"""Property-based tests (hypothesis) for kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Kernel


@given(delays=st.lists(st.integers(min_value=0, max_value=10**9), max_size=60))
@settings(max_examples=60)
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    """Whatever the insertion order, execution time never goes backwards."""
    kernel = Kernel()
    fired = []
    for delay in delays:
        kernel.call_later(delay, lambda d=delay: fired.append((kernel.now, d)))
    kernel.run()
    times = [t for t, _d in fired]
    assert times == sorted(times)
    assert sorted(d for _t, d in fired) == sorted(delays)
    # every callback fired exactly at its requested time
    assert all(t == d for t, d in fired)


@given(
    sleeps=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                    max_size=30)
)
@settings(max_examples=60)
def test_process_clock_equals_sum_of_sleeps(sleeps):
    """A process that sleeps d1..dn observes now == prefix sums exactly."""
    kernel = Kernel()
    observed = []

    def proc():
        for sleep in sleeps:
            yield sleep
            observed.append(kernel.now)

    kernel.spawn(proc(), name="p")
    kernel.run()
    prefix = 0
    expected = []
    for sleep in sleeps:
        prefix += sleep
        expected.append(prefix)
    assert observed == expected


@given(
    n_procs=st.integers(min_value=1, max_value=8),
    n_rounds=st.integers(min_value=1, max_value=8),
    period=st.integers(min_value=1, max_value=1000),
)
@settings(max_examples=40)
def test_identical_periodic_processes_interleave_deterministically(
    n_procs, n_rounds, period
):
    """Two runs with identical setup produce identical event traces."""

    def build_trace():
        kernel = Kernel()
        trace = []

        def proc(tag):
            for _round in range(n_rounds):
                yield period
                trace.append((kernel.now, tag))

        for i in range(n_procs):
            kernel.spawn(proc(i), name=f"p{i}")
        kernel.run()
        return trace

    assert build_trace() == build_trace()
