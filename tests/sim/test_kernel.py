"""Unit tests for the discrete-event kernel: ordering, processes, events."""

import pytest

from repro.sim import (
    Kernel,
    KernelStopped,
    ProcessKilled,
    SchedulingError,
    SimulationError,
)
from repro.sim.units import MS, SEC


def test_clock_starts_at_zero():
    assert Kernel().now == 0


def test_call_later_fires_in_time_order():
    kernel = Kernel()
    fired = []
    kernel.call_later(30, lambda: fired.append("c"))
    kernel.call_later(10, lambda: fired.append("a"))
    kernel.call_later(20, lambda: fired.append("b"))
    kernel.run()
    assert fired == ["a", "b", "c"]
    assert kernel.now == 30


def test_same_timestamp_preserves_insertion_order():
    kernel = Kernel()
    fired = []
    for label in ("first", "second", "third"):
        kernel.call_later(5, lambda label=label: fired.append(label))
    kernel.run()
    assert fired == ["first", "second", "third"]


def test_run_until_advances_clock_even_without_events():
    kernel = Kernel()
    kernel.run(until=2 * SEC)
    assert kernel.now == 2 * SEC


def test_run_until_does_not_execute_later_events():
    kernel = Kernel()
    fired = []
    kernel.call_later(1 * SEC, lambda: fired.append("early"))
    kernel.call_later(3 * SEC, lambda: fired.append("late"))
    kernel.run(until=2 * SEC)
    assert fired == ["early"]
    assert kernel.now == 2 * SEC
    kernel.run()
    assert fired == ["early", "late"]


def test_call_at_in_past_raises():
    kernel = Kernel()
    kernel.call_later(100, lambda: None)
    kernel.run()
    with pytest.raises(SchedulingError):
        kernel.call_at(50, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SchedulingError):
        Kernel().call_later(-1, lambda: None)


def test_process_sleep_advances_time():
    kernel = Kernel()
    trace = []

    def proc():
        trace.append(kernel.now)
        yield 100 * MS
        trace.append(kernel.now)
        yield 250 * MS
        trace.append(kernel.now)

    kernel.spawn(proc(), name="sleeper")
    kernel.run()
    assert trace == [0, 100 * MS, 350 * MS]


def test_process_return_value_visible_via_join():
    kernel = Kernel()
    results = []

    def worker():
        yield 10
        return 42

    def joiner(target):
        value = yield target
        results.append(value)

    target = kernel.spawn(worker(), name="worker")
    kernel.spawn(joiner(target), name="joiner")
    kernel.run()
    assert results == [42]
    assert not target.alive


def test_event_wakes_all_waiters_with_value():
    kernel = Kernel()
    event = kernel.event("go")
    woken = []

    def waiter(tag):
        value = yield event
        woken.append((tag, value, kernel.now))

    kernel.spawn(waiter("a"), name="a")
    kernel.spawn(waiter("b"), name="b")
    kernel.call_later(5 * MS, lambda: event.succeed("payload"))
    kernel.run()
    assert woken == [("a", "payload", 5 * MS), ("b", "payload", 5 * MS)]


def test_event_succeed_is_first_writer_wins():
    kernel = Kernel()
    event = kernel.event()
    assert event.succeed(1) is True
    assert event.succeed(2) is False
    assert event.value == 1


def test_waiting_on_already_succeeded_event_resumes_immediately():
    kernel = Kernel()
    event = kernel.event()
    event.succeed("early")
    seen = []

    def late_waiter():
        value = yield event
        seen.append(value)

    kernel.spawn(late_waiter(), name="late")
    kernel.run()
    assert seen == ["early"]


def test_kill_runs_finally_blocks():
    kernel = Kernel()
    cleaned = []

    def proc():
        try:
            while True:
                yield 1 * SEC
        finally:
            cleaned.append("finally")

    process = kernel.spawn(proc(), name="victim")
    kernel.run(until=3 * SEC)
    process.kill()
    assert cleaned == ["finally"]
    assert not process.alive


def test_kill_is_idempotent():
    kernel = Kernel()

    def proc():
        yield 1 * SEC

    process = kernel.spawn(proc(), name="p")
    process.kill()
    process.kill()
    assert not process.alive


def test_killed_process_does_not_wake_from_event():
    kernel = Kernel()
    event = kernel.event()
    woken = []

    def proc():
        value = yield event
        woken.append(value)

    process = kernel.spawn(proc(), name="p")
    kernel.run(until=1 * MS)
    process.kill()
    event.succeed("too-late")
    kernel.run()
    assert woken == []


def test_process_catching_processkilled_still_terminates():
    kernel = Kernel()

    def stubborn():
        try:
            yield 1 * SEC
        except ProcessKilled:
            pass  # swallow; kernel must still retire the process

    process = kernel.spawn(stubborn(), name="stubborn")
    kernel.run(until=1 * MS)
    process.kill()
    assert not process.alive


def test_yielding_garbage_raises_simulation_error():
    kernel = Kernel()

    def bad():
        yield "not-a-valid-request"

    kernel.spawn(bad(), name="bad")
    with pytest.raises(SimulationError):
        kernel.run()


def test_process_exception_propagates_out_of_run():
    kernel = Kernel()

    def boom():
        yield 10
        raise RuntimeError("agent bug")

    kernel.spawn(boom(), name="boom")
    with pytest.raises(RuntimeError, match="agent bug"):
        kernel.run()


def test_stop_kills_processes_and_blocks_new_work():
    kernel = Kernel()

    def proc():
        while True:
            yield 1 * SEC

    process = kernel.spawn(proc(), name="p")
    kernel.run(until=500 * MS)
    kernel.stop()
    assert not process.alive
    with pytest.raises(KernelStopped):
        kernel.call_later(1, lambda: None)
    with pytest.raises(KernelStopped):
        kernel.spawn(proc(), name="q")


def test_step_executes_exactly_one_event():
    kernel = Kernel()
    fired = []
    kernel.call_later(1, lambda: fired.append(1))
    kernel.call_later(2, lambda: fired.append(2))
    assert kernel.step() is True
    assert fired == [1]
    assert kernel.step() is True
    assert kernel.step() is False
    assert fired == [1, 2]


def test_live_processes_tracking():
    kernel = Kernel()

    def short():
        yield 1

    def long():
        yield 1 * SEC

    kernel.spawn(short(), name="short")
    keeper = kernel.spawn(long(), name="long")
    kernel.run(until=10)
    assert [p.name for p in kernel.live_processes()] == ["long"]
    kernel.run()
    assert not keeper.alive


def test_zero_delay_yield_resumes_same_timestamp_later_order():
    kernel = Kernel()
    trace = []

    def a():
        trace.append(("a", kernel.now))
        yield 0
        trace.append(("a2", kernel.now))

    def b():
        trace.append(("b", kernel.now))
        yield 0
        trace.append(("b2", kernel.now))

    kernel.spawn(a(), name="a")
    kernel.spawn(b(), name="b")
    kernel.run()
    assert trace == [("a", 0), ("b", 0), ("a2", 0), ("b2", 0)]
