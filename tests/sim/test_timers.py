"""Cancellable timers, lazy deletion, event pooling, O(1) waiter discard."""

import pytest

from repro.sim import Kernel, SchedulingError, SimQueue, QUEUE_TIMEOUT
from repro.sim.kernel import Timer
from repro.sim.units import MS, SEC


def test_call_later_returns_cancellable_timer():
    kernel = Kernel()
    fired = []
    timer = kernel.call_later(10, lambda: fired.append("t"))
    assert isinstance(timer, Timer)
    assert not timer.cancelled and not timer.fired
    timer.cancel()
    assert timer.cancelled
    kernel.run()
    assert fired == []
    assert not timer.fired


def test_cancel_after_fire_is_noop():
    kernel = Kernel()
    fired = []
    timer = kernel.call_later(5, lambda: fired.append("t"))
    kernel.run()
    assert fired == ["t"] and timer.fired
    timer.cancel()
    assert timer.fired and not timer.cancelled


def test_double_cancel_is_noop():
    kernel = Kernel()
    timer = kernel.call_at(10, lambda: None)
    timer.cancel()
    timer.cancel()
    assert timer.cancelled
    kernel.run()


def test_pending_events_excludes_cancelled_timers():
    kernel = Kernel()
    keep = kernel.call_later(10, lambda: None)
    drop = kernel.call_later(20, lambda: None)
    assert kernel.pending_events == 2
    drop.cancel()
    assert kernel.pending_events == 1
    assert keep is not drop


def test_heap_compaction_under_mass_cancellation():
    kernel = Kernel()
    timers = [kernel.call_later(1000 + i, lambda: None) for i in range(500)]
    for timer in timers[:-1]:
        timer.cancel()
    # Lazy deletion must not retain ~500 dead entries once they dominate.
    assert len(kernel._heap) < 100
    assert kernel.pending_events == 1
    fired = []
    kernel.call_later(2000, lambda: fired.append("live"))
    kernel.run()
    assert fired == ["live"]


def test_succeed_later_equivalent_to_closure_timer():
    kernel = Kernel()
    event = kernel.event("payload")
    kernel.succeed_later(7, event, "value")
    kernel.run()
    assert event.succeeded and event.value == "value"


def test_succeed_later_negative_delay_raises():
    kernel = Kernel()
    with pytest.raises(SchedulingError):
        kernel.succeed_later(-1, kernel.event(), None)


def test_queue_get_success_cancels_its_timeout_timer():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=1)
    got = []

    def consumer():
        item = yield from queue.get(timeout_us=5 * SEC)
        got.append(item)

    kernel.spawn(consumer(), name="consumer")
    kernel.call_later(1 * MS, lambda: queue.put("fresh"))
    kernel.run(until=2 * MS)
    assert got == ["fresh"]
    # The 5 s timeout must be dead: no pending live event remains.
    assert kernel.pending_events == 0


def test_queue_timeout_still_fires_and_unregisters_waiter():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=1)
    got = []

    def consumer():
        item = yield from queue.get(timeout_us=10 * MS)
        got.append(item)

    kernel.spawn(consumer(), name="consumer")
    kernel.run()
    assert got == [QUEUE_TIMEOUT]
    # A later put must not be swallowed by the dead waiter.
    queue.put("later")
    assert len(queue) == 1


def test_event_pool_reuse_is_safe_across_gets():
    kernel = Kernel()
    queue = SimQueue(kernel, capacity=1)
    got = []

    def producer():
        for i in range(50):
            queue.put(i)
            yield 10

    def consumer():
        for _ in range(50):
            item = yield from queue.get(timeout_us=1000)
            got.append(item)

    kernel.spawn(producer(), name="producer")
    kernel.spawn(consumer(), name="consumer")
    kernel.run()
    assert got == list(range(50))


def test_discard_waiter_is_correct_in_any_kill_order():
    kernel = Kernel()
    event = kernel.event("shared")
    woken = []

    def waiter(tag):
        value = yield event
        woken.append((tag, value))

    processes = [
        kernel.spawn(waiter(i), name=f"w{i}") for i in range(7)
    ]
    kernel.run(until=1)
    # Kill from the middle and ends; survivors must all still wake.
    for index in (3, 0, 6, 1):
        processes[index].kill()
    event.succeed("go")
    kernel.run()
    assert sorted(tag for tag, _ in woken) == [2, 4, 5]
    assert all(value == "go" for _, value in woken)


def test_run_until_with_pending_cancelled_head_entry():
    kernel = Kernel()
    fired = []
    head = kernel.call_later(5, lambda: fired.append("dead"))
    kernel.call_later(10, lambda: fired.append("live"))
    head.cancel()
    kernel.run(until=20)
    assert fired == ["live"]
    assert kernel.now == 20
