"""``repro runs`` and the journaled command flags, driven in-process."""

import pytest

from repro.cli import main
from repro.journal.log import KILL_AFTER_ENV, set_kill_action
from repro.journal.pipelines import open_sweep_journal
from repro.journal.registry import list_runs
from repro.sweep import SweepRunner
from repro.sweep.spec import load_spec

SPEC = """
name = "runs-cli-demo"
agents = ["overclock"]
scales = [2]
seeds = [0]
duration_s = 10
rack_size = 1

[[fault]]
kind = "bad_data"
intensities = [0.9]
start_s = 2
duration_s = 5
racks = [0]
"""


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "demo.toml"
    path.write_text(SPEC)
    return str(path)


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def test_runs_list_empty(capsys, cache_dir):
    assert main(["runs", "list", "--cache-dir", cache_dir]) == 0
    assert "no journaled runs under" in capsys.readouterr().out


def test_sweep_run_journals_and_runs_list_shows_it(capsys, spec_path,
                                                   cache_dir):
    assert main(
        ["sweep", "run", spec_path, "--cache-dir", cache_dir]
    ) == 0
    out = capsys.readouterr().out
    assert "[journal: run " in out
    assert "sealed]" in out

    assert main(["runs", "list", "--cache-dir", cache_dir]) == 0
    listing = capsys.readouterr().out
    assert "sweep" in listing
    assert "sealed" in listing
    assert "2/2 done" in listing


def test_no_journal_flag_suppresses_journal(capsys, spec_path, cache_dir):
    assert main(
        ["sweep", "run", spec_path, "--cache-dir", cache_dir,
         "--no-journal"]
    ) == 0
    assert "[journal:" not in capsys.readouterr().out
    assert list_runs(cache_dir) == []


def test_runs_show_renders_manifest(capsys, spec_path, cache_dir):
    assert main(
        ["sweep", "run", spec_path, "--cache-dir", cache_dir]
    ) == 0
    capsys.readouterr()
    (info,) = list_runs(cache_dir)
    assert main(
        ["runs", "show", info.run_id, "--cache-dir", cache_dir]
    ) == 0
    out = capsys.readouterr().out
    assert f"run {info.run_id} (sweep) — sealed" in out
    assert "sealed digest: " in out
    assert "units: 2/2 done" in out


def test_runs_show_unknown_id_fails(capsys, cache_dir):
    assert main(
        ["runs", "show", "deadbeefdeadbeef", "--cache-dir", cache_dir]
    ) == 1
    assert "no journaled run" in capsys.readouterr().out


def test_runs_resume_unknown_id_fails(capsys, cache_dir):
    assert main(
        ["runs", "resume", "deadbeefdeadbeef", "--cache-dir", cache_dir]
    ) == 1
    assert "no journaled run" in capsys.readouterr().out


def _interrupt_sweep(spec_path, cache_dir, monkeypatch):
    """Journal one cell of the campaign, then "die" mid-run."""
    class Killed(Exception):
        pass

    spec = load_spec(spec_path)
    monkeypatch.setenv(KILL_AFTER_ENV, "3")
    set_kill_action(lambda: (_ for _ in ()).throw(Killed()))
    try:
        journal = open_sweep_journal(cache_dir, spec)
        with pytest.raises(Killed):
            SweepRunner(spec, journal=journal).run()
        journal.close()  # the dead pid's lease would be stolen anyway
    finally:
        monkeypatch.delenv(KILL_AFTER_ENV, raising=False)
        set_kill_action(None)
    return journal.run_id


def test_runs_resume_finishes_interrupted_sweep(capsys, spec_path,
                                                cache_dir, monkeypatch):
    run_id = _interrupt_sweep(spec_path, cache_dir, monkeypatch)
    (info,) = list_runs(cache_dir)
    assert info.run_id == run_id
    assert info.status == "interrupted"
    assert info.done_units == 1

    assert main(["runs", "resume", run_id, "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "replayed=1 executed=1" in out
    assert "sealed]" in out
    (after,) = list_runs(cache_dir)
    assert after.status == "sealed"


def test_sweep_resume_flag_finishes_interrupted_run(capsys, spec_path,
                                                    cache_dir,
                                                    monkeypatch):
    _interrupt_sweep(spec_path, cache_dir, monkeypatch)
    assert main(
        ["sweep", "run", spec_path, "--cache-dir", cache_dir, "--resume"]
    ) == 0
    out = capsys.readouterr().out
    assert "replayed=1 executed=1" in out
    assert "sealed]" in out


def test_resumed_digest_matches_uninterrupted_run(capsys, spec_path,
                                                  cache_dir, monkeypatch):
    baseline = SweepRunner(load_spec(spec_path)).run().digest()
    _interrupt_sweep(spec_path, cache_dir, monkeypatch)
    assert main(
        ["sweep", "run", spec_path, "--cache-dir", cache_dir, "--resume"]
    ) == 0
    out = capsys.readouterr().out
    assert f"campaign digest: {baseline}" in out


def test_reproduce_all_journals_series_runs(capsys, cache_dir):
    assert main(
        ["reproduce-all", "--only", "table1", "--cache-dir", cache_dir,
         "--no-cache"]
    ) == 0
    out = capsys.readouterr().out
    assert "[journal: run " in out
    assert "sealed]" in out
    (info,) = list_runs(cache_dir)
    assert info.kind == "reproduce"
    assert info.status == "sealed"


def test_reproduce_all_resume_needs_journal(cache_dir):
    with pytest.raises(SystemExit):
        main(
            ["reproduce-all", "--only", "table1", "--cache-dir",
             cache_dir, "--no-journal", "--resume"]
        )


def test_fleet_journals_via_cache_env(capsys, cache_dir, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
    assert main(
        ["fleet", "--nodes", "4", "--seconds", "10", "--workers", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "[journal: run " in out
    assert "sealed]" in out
    (info,) = list_runs(cache_dir)
    assert info.kind == "fleet"
    # Resume of a sealed fleet run replays everything, executes nothing.
    assert main(
        ["runs", "resume", info.run_id, "--cache-dir", cache_dir]
    ) == 0
    resumed = capsys.readouterr().out
    assert "replayed=4 executed=0" in resumed


# -- runs prune --------------------------------------------------------------


def _seal_fleet(cache_dir, seed, nodes=2):
    from repro.experiments.driver import FleetDriver
    from repro.fleet.config import FleetConfig
    from repro.journal.pipelines import open_fleet_journal

    config = FleetConfig(
        n_nodes=nodes, agent="overclock", seed=seed, duration_s=10
    )
    with open_fleet_journal(cache_dir, config, 1) as journal:
        FleetDriver(config, workers=1, journal=journal).run()
    return journal.run_id


def test_runs_prune_empty_root(capsys, cache_dir):
    assert main(["runs", "prune", "--cache-dir", cache_dir]) == 0
    assert "0 pruned, 0 kept" in capsys.readouterr().out


def test_runs_prune_deletes_sealed_runs(capsys, cache_dir):
    a = _seal_fleet(cache_dir, seed=1)
    b = _seal_fleet(cache_dir, seed=2)
    assert main(["runs", "prune", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert f"pruned {a}" in out and f"pruned {b}" in out
    assert "2 pruned, 0 kept, 0 running refused" in out
    assert list_runs(cache_dir) == []


def test_runs_prune_keep_spares_newest(capsys, cache_dir):
    _seal_fleet(cache_dir, seed=1)
    _seal_fleet(cache_dir, seed=2)
    newest = list_runs(cache_dir)[0].run_id
    assert main(
        ["runs", "prune", "--keep", "1", "--cache-dir", cache_dir]
    ) == 0
    assert "1 pruned, 1 kept" in capsys.readouterr().out
    (survivor,) = list_runs(cache_dir)
    assert survivor.run_id == newest


def test_runs_prune_sealed_only_keeps_interrupted(capsys, spec_path,
                                                  cache_dir, monkeypatch):
    interrupted = _interrupt_sweep(spec_path, cache_dir, monkeypatch)
    _seal_fleet(cache_dir, seed=3)
    assert main(
        ["runs", "prune", "--sealed-only", "--cache-dir", cache_dir]
    ) == 0
    assert "1 pruned, 1 kept" in capsys.readouterr().out
    (survivor,) = list_runs(cache_dir)
    assert survivor.run_id == interrupted
    assert survivor.status == "interrupted"  # still resumable


def test_runs_prune_refuses_running_run(capsys, cache_dir):
    from repro.fleet.config import FleetConfig
    from repro.journal.pipelines import open_fleet_journal

    config = FleetConfig(
        n_nodes=2, agent="overclock", seed=4, duration_s=10
    )
    journal = open_fleet_journal(cache_dir, config, 1)
    try:
        assert main(["runs", "prune", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert f"refused {journal.run_id}" in out
        assert "1 running refused" in out
        (info,) = list_runs(cache_dir)
        assert info.status == "running"
    finally:
        journal.close()


def test_runs_prune_negative_keep_is_usage_error(capsys, cache_dir):
    assert main(
        ["runs", "prune", "--keep", "-1", "--cache-dir", cache_dir]
    ) == 2
    assert "keep must be >= 0" in capsys.readouterr().out


def test_runs_prune_removes_stale_lease_files(cache_dir):
    import os

    from repro.journal.run import runs_root

    run_id = _seal_fleet(cache_dir, seed=5)
    # fabricate a stale lease left behind by a dead owner
    stale = os.path.join(runs_root(cache_dir), f"{run_id}.lease")
    with open(stale, "w", encoding="utf-8") as handle:
        handle.write("{}")
    assert main(["runs", "prune", "--cache-dir", cache_dir]) == 0
    assert not os.path.exists(stale)
    assert list_runs(cache_dir) == []
