"""The append-only record log: framing, fsync discipline, torn tails."""

import os
import struct

import pytest

from repro.journal.log import (
    KILL_AFTER_ENV,
    RecordLog,
    replay_records,
    set_kill_action,
)

_FRAME = struct.Struct(">II")


@pytest.fixture()
def log_path(tmp_path):
    return str(tmp_path / "log.bin")


def test_append_then_replay_round_trips(log_path):
    log = RecordLog(log_path)
    log.append("UNIT_DISPATCHED", unit="u1", attempt=0)
    log.append("UNIT_DONE", unit="u1", wall=0.5, digest="d", executed=True)
    log.append("RUN_SEALED", digest="final")
    log.close()
    records, valid = replay_records(log_path)
    assert [r["kind"] for r in records] == [
        "UNIT_DISPATCHED", "UNIT_DONE", "RUN_SEALED",
    ]
    assert records[1]["unit"] == "u1"
    assert records[2]["digest"] == "final"
    assert valid == os.path.getsize(log_path)


def test_unknown_kind_rejected(log_path):
    log = RecordLog(log_path)
    with pytest.raises(ValueError):
        log.append("NOT_A_KIND", unit="u1")
    log.close()


def test_replay_missing_file_is_empty(tmp_path):
    records, valid = replay_records(str(tmp_path / "absent.bin"))
    assert records == []
    assert valid == 0


def _write_records(path, n):
    log = RecordLog(path)
    for i in range(n):
        log.append("UNIT_DONE", unit=f"u{i}", wall=0.0, digest="d",
                   executed=True)
    log.close()
    return os.path.getsize(path)


def test_torn_tail_payload_is_dropped(log_path):
    size = _write_records(log_path, 3)
    # Simulate a kill mid-write: a fourth frame whose payload is cut off.
    with open(log_path, "ab") as handle:
        handle.write(_FRAME.pack(100, 0))
        handle.write(b"only-ten-b")
    records, valid = replay_records(log_path)
    assert len(records) == 3
    assert valid == size


def test_torn_header_is_dropped(log_path):
    size = _write_records(log_path, 2)
    with open(log_path, "ab") as handle:
        handle.write(b"\x00\x00")  # partial length header
    records, valid = replay_records(log_path)
    assert len(records) == 2
    assert valid == size


def test_crc_mismatch_stops_replay(log_path):
    _write_records(log_path, 3)
    # Flip a payload byte inside the *last* frame.
    with open(log_path, "r+b") as handle:
        handle.seek(-1, os.SEEK_END)
        last = handle.read(1)
        handle.seek(-1, os.SEEK_END)
        handle.write(bytes([last[0] ^ 0xFF]))
    records, _valid = replay_records(log_path)
    assert len(records) == 2


def test_reopen_truncates_torn_tail_before_appending(log_path):
    size = _write_records(log_path, 2)
    with open(log_path, "ab") as handle:
        handle.write(_FRAME.pack(50, 0) + b"torn")
    log = RecordLog(log_path)  # re-open for append truncates
    assert os.path.getsize(log_path) == size
    assert len(log.records) == 2
    log.append("RUN_SEALED", digest="x")
    log.close()
    records, valid = replay_records(log_path)
    assert [r["kind"] for r in records][-1] == "RUN_SEALED"
    assert valid == os.path.getsize(log_path)


def test_kill_after_fires_injected_action(log_path, monkeypatch):
    fired = []
    monkeypatch.setenv(KILL_AFTER_ENV, "2")
    set_kill_action(lambda: fired.append(True))
    try:
        log = RecordLog(log_path)
        log.append("UNIT_DISPATCHED", unit="u1", attempt=0)
        assert not fired
        log.append("UNIT_DONE", unit="u1", wall=0.0, digest="d",
                   executed=True)
        assert fired  # fired *after* the 2nd fsync'd append
        log.close()
    finally:
        set_kill_action(None)
    # Both records are durable: the kill lands post-fsync by design.
    records, _valid = replay_records(log_path)
    assert len(records) == 2
