"""Real-process chaos: SIGTERM unwinds gracefully, SIGKILL is survivable.

These spawn actual ``python -m repro`` orchestrators, so they are the
only tests that exercise the signal handlers and the ``--kill-parent``
harness exactly as a terminal or CI job would.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

SPEC = """
name = "process-chaos"
agents = ["overclock"]
scales = [2]
seeds = [0]
duration_s = 10
rack_size = 1

[[fault]]
kind = "bad_data"
intensities = [0.9]
start_s = 2
duration_s = 5
racks = [0]
"""


def _env(cache_dir):
    return {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(sys.path),
        "REPRO_CACHE_DIR": cache_dir,
    }


def test_sigterm_unwinds_gracefully(tmp_path):
    """SIGTERM → pool shutdown, "repro: terminated", exit 143.

    A SIGTERM'd orchestrator must exit via the handler (code 143, the
    shell convention for 128+SIGTERM), not die on the default
    disposition (negative returncode), and must not leave pool workers
    behind.
    """
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "--nodes", "64",
         "--seconds", "3600", "--workers", "2", "--no-journal"],
        env=_env(str(tmp_path)),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        time.sleep(1.5)  # let the pool spin up and start simulating
        assert proc.poll() is None, "fleet finished before the signal"
        proc.send_signal(signal.SIGTERM)
        stderr = proc.communicate(timeout=60)[1]
    finally:
        if proc.poll() is None:  # pragma: no cover — hung orchestrator
            proc.kill()
            proc.wait()
    assert proc.returncode == 143, stderr
    assert "repro: terminated" in stderr


@pytest.mark.slow
def test_chaos_kill_parent_sweep_survives(tmp_path):
    """The full harness: SIGKILL mid-run, resume, bit-identical digest."""
    spec = tmp_path / "chaos.toml"
    spec.write_text(SPEC)
    result = subprocess.run(
        [sys.executable, "-m", "repro", "chaos", "sweep",
         "--spec", str(spec), "--kill-parent", "3", "--workers", "1"],
        env=_env(str(tmp_path / "cache")),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "re-executed=0" in result.stdout
    assert "[chaos: OK" in result.stdout
    assert "matches uninterrupted run" in result.stdout
