"""Real-process chaos: SIGTERM unwinds gracefully, SIGKILL is survivable.

These spawn actual ``python -m repro`` orchestrators, so they are the
only tests that exercise the signal handlers and the ``--kill-parent``
harness exactly as a terminal or CI job would.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

SPEC = """
name = "process-chaos"
agents = ["overclock"]
scales = [2]
seeds = [0]
duration_s = 10
rack_size = 1

[[fault]]
kind = "bad_data"
intensities = [0.9]
start_s = 2
duration_s = 5
racks = [0]
"""


def _env(cache_dir):
    return {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(sys.path),
        "REPRO_CACHE_DIR": cache_dir,
    }


def test_sigterm_unwinds_gracefully(tmp_path):
    """SIGTERM → pool shutdown, "repro: terminated", exit 143.

    A SIGTERM'd orchestrator must exit via the handler (code 143, the
    shell convention for 128+SIGTERM), not die on the default
    disposition (negative returncode), and must not leave pool workers
    behind.
    """
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "--nodes", "64",
         "--seconds", "3600", "--workers", "2", "--no-journal"],
        env=_env(str(tmp_path)),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        time.sleep(1.5)  # let the pool spin up and start simulating
        assert proc.poll() is None, "fleet finished before the signal"
        proc.send_signal(signal.SIGTERM)
        stderr = proc.communicate(timeout=60)[1]
    finally:
        if proc.poll() is None:  # pragma: no cover — hung orchestrator
            proc.kill()
            proc.wait()
    assert proc.returncode == 143, stderr
    assert "repro: terminated" in stderr


def test_sigint_unwinds_gracefully(tmp_path):
    """SIGINT → pool shutdown, "repro: interrupted", exit 130.

    The Ctrl-C twin of the SIGTERM test: KeyboardInterrupt must reach
    ``main``'s handler (130 = 128+SIGINT), not kill the process on the
    default disposition, and must not leave pool workers behind.
    """
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "--nodes", "64",
         "--seconds", "3600", "--workers", "2", "--no-journal"],
        env=_env(str(tmp_path)),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        time.sleep(1.5)  # let the pool spin up and start simulating
        assert proc.poll() is None, "fleet finished before the signal"
        proc.send_signal(signal.SIGINT)
        stderr = proc.communicate(timeout=60)[1]
    finally:
        if proc.poll() is None:  # pragma: no cover — hung orchestrator
            proc.kill()
            proc.wait()
    assert proc.returncode == 130, stderr
    assert "repro: interrupted" in stderr


def test_main_sigint_handler_shuts_shared_pool_down(monkeypatch, capsys):
    """The 130 path really tears the warm pool down, in-process.

    A KeyboardInterrupt that lands *outside* any supervised dispatch
    (here: raised from the driver before dispatching) must still leave
    ``shutdown_shared_pool`` called — no module-global pool, no live
    worker processes.
    """
    from repro.experiments import driver as driver_module
    from repro.cli import main

    seen = {}

    def grab_pool_then_interrupt(self):
        pool = driver_module.shared_pool(2)
        seen["procs"] = [
            worker.process for worker in pool._workers.values()
        ]
        raise KeyboardInterrupt()

    monkeypatch.setattr(
        driver_module.FleetDriver, "run", grab_pool_then_interrupt
    )
    assert main(
        ["fleet", "--nodes", "8", "--seconds", "10", "--workers", "2",
         "--no-journal"]
    ) == 130
    assert "repro: interrupted" in capsys.readouterr().err
    assert driver_module._shared_pool is None
    # grow-never-shrink: a pool left warm by an earlier in-process test
    # may hold more than the 2 workers requested here
    assert len(seen["procs"]) >= 2
    for process in seen["procs"]:
        process.join(timeout=5.0)
        assert not process.is_alive()


@pytest.mark.slow
def test_chaos_kill_parent_sweep_survives(tmp_path):
    """The full harness: SIGKILL mid-run, resume, bit-identical digest."""
    spec = tmp_path / "chaos.toml"
    spec.write_text(SPEC)
    result = subprocess.run(
        [sys.executable, "-m", "repro", "chaos", "sweep",
         "--spec", str(spec), "--kill-parent", "3", "--workers", "1"],
        env=_env(str(tmp_path / "cache")),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "re-executed=0" in result.stdout
    assert "[chaos: OK" in result.stdout
    assert "matches uninterrupted run" in result.stdout
