"""Seal-time ``summary.json``: sealed runs list without log replay.

The registry's fast path is proven the honest way: delete ``log.bin``
after sealing — if ``inspect_run`` still classifies the run correctly
with correct counts, it cannot have replayed anything.
"""

import json
import os

import pytest

from repro.experiments.driver import FleetDriver
from repro.fleet.config import FleetConfig
from repro.journal.pipelines import open_fleet_journal
from repro.journal.registry import inspect_run, interrupted_runs, list_runs

FLEET = FleetConfig(n_nodes=4, agent="overclock", seed=11, duration_s=10)


def _sealed_run(root):
    with open_fleet_journal(root, FLEET, 1) as journal:
        FleetDriver(FLEET, workers=1, journal=journal).run()
    assert journal.sealed
    return journal


def test_seal_writes_summary_sidecar(tmp_path):
    root = str(tmp_path)
    journal = _sealed_run(root)
    path = os.path.join(journal.directory, "summary.json")
    with open(path, "r", encoding="utf-8") as handle:
        summary = json.load(handle)
    assert summary["run_id"] == journal.run_id
    assert summary["digest"] == journal.sealed_digest
    assert summary["total_units"] == len(journal.units)
    assert summary["done_units"] == len(journal.units)
    assert summary["executed_units"] + summary["cached_units"] == \
        summary["done_units"]
    assert summary["quarantined_units"] == 0


def test_sealed_run_inspects_without_log_replay(tmp_path):
    root = str(tmp_path)
    journal = _sealed_run(root)
    os.unlink(os.path.join(journal.directory, "log.bin"))
    info = inspect_run(root, journal.run_id)
    assert info is not None
    assert info.status == "sealed"
    assert info.sealed_digest == journal.sealed_digest
    assert info.total_units == len(journal.units)
    assert info.done_units == len(journal.units)
    assert info.executed_units == len(journal.units)
    assert info.cached_units == 0
    runs = list_runs(root)
    assert [run.run_id for run in runs] == [journal.run_id]
    assert runs[0].status == "sealed"


def test_lost_sidecar_falls_back_to_replay(tmp_path):
    """A crash between the RUN_SEALED append and the sidecar write
    loses ``summary.json`` but nothing else — the replay path must
    reach the same answer."""
    root = str(tmp_path)
    journal = _sealed_run(root)
    fast = inspect_run(root, journal.run_id)
    os.unlink(os.path.join(journal.directory, "summary.json"))
    slow = inspect_run(root, journal.run_id)
    assert slow.status == "sealed"
    assert slow.sealed_digest == fast.sealed_digest
    assert slow.done_units == fast.done_units
    assert slow.executed_units == fast.executed_units
    assert slow.cached_units == fast.cached_units
    assert slow.quarantined_units == fast.quarantined_units


def test_corrupt_sidecar_falls_back_to_replay(tmp_path):
    root = str(tmp_path)
    journal = _sealed_run(root)
    path = os.path.join(journal.directory, "summary.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{ not json")
    info = inspect_run(root, journal.run_id)
    assert info.status == "sealed"  # replay path, same verdict
    assert info.sealed_digest == journal.sealed_digest


def test_unsealed_run_has_no_sidecar_and_replays(tmp_path):
    root = str(tmp_path)
    journal = open_fleet_journal(root, FLEET, 1)
    unit = journal.units[0]
    journal.record_dispatched(unit, 1)
    journal.record_done(unit, {"v": 1}, 0.01, executed=True)
    journal.close()  # interrupted: no seal, lease released
    assert not os.path.exists(
        os.path.join(journal.directory, "summary.json")
    )
    info = inspect_run(root, journal.run_id)
    assert info.status == "interrupted"
    assert info.done_units == 1
    assert interrupted_runs(root) == [info]


def test_interrupted_runs_excludes_sealed_and_running(tmp_path):
    root = str(tmp_path)
    sealed = _sealed_run(root)
    running = open_fleet_journal(
        root, FleetConfig(
            n_nodes=2, agent="overclock", seed=12, duration_s=10
        ), 1,
    )
    try:
        orphans = interrupted_runs(root)
        assert [run.run_id for run in orphans] == []
    finally:
        running.close()
    # once released without a seal, the run becomes adoptable
    orphans = interrupted_runs(root)
    assert [run.run_id for run in orphans] == [running.run_id]
    assert sealed.run_id not in {run.run_id for run in orphans}
