"""Interrupted-then-resumed pipelines seal with uninterrupted digests.

The orchestrator "dies" in-process: the journal's kill-after hook is
swapped for an exception raised immediately after the Nth fsync'd
record append — the same code path the subprocess SIGKILL harness
(``repro chaos --kill-parent``) exercises, minus the process teardown.
The journal is then closed (standing in for the pid dying, which is
what makes the lease stealable) and the run resumed.
"""

import pytest

from repro.experiments.driver import FleetDriver, reproduce_all, runs_digest
from repro.fleet.config import FleetConfig
from repro.journal.log import KILL_AFTER_ENV, set_kill_action
from repro.journal.pipelines import (
    open_fleet_journal,
    open_reproduce_journal,
    open_sweep_journal,
)
from repro.sweep import SweepRunner
from repro.sweep.spec import CampaignSpec


class _Killed(Exception):
    pass


def _raise_killed():
    raise _Killed()


@pytest.fixture()
def kill_after(monkeypatch):
    """Arm the count-based kill point; yields a setter for N."""
    def arm(n):
        monkeypatch.setenv(KILL_AFTER_ENV, str(n))
        set_kill_action(_raise_killed)

    yield arm
    monkeypatch.delenv(KILL_AFTER_ENV, raising=False)
    set_kill_action(None)


def _disarm(monkeypatch):
    monkeypatch.delenv(KILL_AFTER_ENV, raising=False)
    set_kill_action(None)


FLEET = FleetConfig(n_nodes=4, agent="overclock", seed=7, duration_s=10)

SPEC = CampaignSpec.from_dict({
    "name": "resume-demo",
    "agents": ["overclock"],
    "scales": [2],
    "seeds": [0],
    "duration_s": 10,
    "rack_size": 1,
    "fault": [{
        "kind": "bad_data", "intensities": [0.9],
        "start_s": 2, "duration_s": 5, "racks": [0],
    }],
})


def test_fleet_interrupt_resume_bit_identical(tmp_path, kill_after,
                                              monkeypatch):
    root = str(tmp_path)
    baseline = FleetDriver(FLEET, workers=1).run().digest()
    kill_after(3)  # u0: dispatched+done, u1: dispatched, then "killed"
    journal = open_fleet_journal(root, FLEET, workers=1)
    with pytest.raises(_Killed):
        FleetDriver(FLEET, workers=1, journal=journal).run()
    journal.close()  # stands in for the dead pid releasing the lease
    _disarm(monkeypatch)

    with open_fleet_journal(
        root, FLEET, workers=1, resume=True
    ) as resumed:
        aggregate = FleetDriver(FLEET, workers=1, journal=resumed).run()
    assert aggregate.digest() == baseline
    assert resumed.sealed_digest == baseline
    assert resumed.stats.replayed == 1  # only u0 was journaled
    assert resumed.stats.executed == 3  # the rest ran exactly once
    assert resumed.stats.replayed + resumed.stats.executed == 4


def test_fleet_resume_of_sealed_run_executes_nothing(tmp_path):
    root = str(tmp_path)
    with open_fleet_journal(root, FLEET, workers=1) as journal:
        first = FleetDriver(FLEET, workers=1, journal=journal).run()
    with open_fleet_journal(
        root, FLEET, workers=1, resume=True
    ) as resumed:
        again = FleetDriver(FLEET, workers=1, journal=resumed).run()
    assert again.digest() == first.digest()
    assert resumed.stats.executed == 0
    assert resumed.stats.replayed == 4


def test_reproduce_interrupt_resume_bit_identical(tmp_path, kill_after,
                                                  monkeypatch):
    root = str(tmp_path)
    names = ["table1", "table2"]
    baseline = runs_digest(reproduce_all(only=names))
    kill_after(3)  # table1 journaled, table2 dispatched, then "killed"
    journal = open_reproduce_journal(root, names, 1.0)
    with pytest.raises(_Killed):
        reproduce_all(only=names, journal=journal)
    journal.close()
    _disarm(monkeypatch)

    with open_reproduce_journal(
        root, names, 1.0, resume=True
    ) as resumed:
        runs = reproduce_all(only=names, journal=resumed)
    assert runs_digest(runs) == baseline
    assert resumed.sealed_digest == baseline
    assert resumed.stats.replayed == 1
    assert resumed.stats.executed == 1


def test_reproduce_journal_requires_series_granularity(tmp_path):
    with open_reproduce_journal(
        str(tmp_path), ["table1"], 1.0
    ) as journal:
        with pytest.raises(ValueError):
            reproduce_all(
                only=["table1"], granularity="artifact", journal=journal
            )


def test_sweep_interrupt_resume_bit_identical(tmp_path, kill_after,
                                              monkeypatch):
    root = str(tmp_path)
    baseline = SweepRunner(SPEC).run().digest()
    kill_after(3)  # cell 0 journaled, cell 1 dispatched, then "killed"
    journal = open_sweep_journal(root, SPEC)
    with pytest.raises(_Killed):
        SweepRunner(SPEC, journal=journal).run()
    journal.close()
    _disarm(monkeypatch)

    with open_sweep_journal(root, SPEC, resume=True) as resumed:
        report = SweepRunner(SPEC, journal=resumed).run()
    assert report.digest() == baseline
    assert resumed.stats.replayed == 1
    assert resumed.stats.executed == 1
    # Replayed cells count as from-cache in the report accounting.
    assert report.executed == 1
    assert report.from_cache == 1


def test_sweep_cache_hits_are_journaled_durably(tmp_path):
    """A fresh journaled run over a warm cache records every hit with
    ``executed=False`` — so a later resume replays them from the journal
    without re-probing the cache."""
    from repro.cache import ResultCache

    root = str(tmp_path)
    cache = ResultCache(root)
    with open_sweep_journal(root, SPEC) as first:
        warm_digest = SweepRunner(SPEC, cache=cache, journal=first).run(
        ).digest()
        assert first.stats.executed == 2
    with open_sweep_journal(root, SPEC) as second:  # fresh run, warm cache
        report = SweepRunner(SPEC, cache=cache, journal=second).run()
        assert second.stats.cached == 2
        assert second.stats.executed == 0
    assert report.digest() == warm_digest
