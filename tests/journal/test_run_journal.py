"""RunJournal: deterministic ids, durable replay, digest verification."""

import os
import pickle

import pytest

from repro.journal.lease import LeaseHeldError
from repro.journal.log import replay_records, set_kill_action
from repro.journal.run import (
    RunJournal,
    derive_run_id,
    open_run,
    runs_root,
    _unit_file,
)

CONFIG = {"n": 4, "agent": "overclock"}
UNITS = ["u0", "u1", "u2"]


def _open(tmp_path, resume=False, units=UNITS, **kwargs):
    return open_run(
        str(tmp_path),
        kind="test",
        config=CONFIG,
        plan={"p": 1},
        units=list(units),
        resume=resume,
        **kwargs,
    )


def test_run_id_is_deterministic_and_config_sensitive():
    assert derive_run_id("test", CONFIG) == derive_run_id("test", CONFIG)
    assert derive_run_id("test", CONFIG) != derive_run_id("other", CONFIG)
    assert derive_run_id("test", CONFIG) != derive_run_id(
        "test", {**CONFIG, "n": 5}
    )


def test_fresh_open_writes_manifest_and_claims_lease(tmp_path):
    with _open(tmp_path) as journal:
        assert journal.units == UNITS
        assert journal.manifest["kind"] == "test"
        assert os.path.isdir(journal.directory)
        lease = os.path.join(
            runs_root(str(tmp_path)), f"{journal.run_id}.lease"
        )
        assert os.path.exists(lease)
    assert not os.path.exists(lease)  # close releases


def test_second_orchestrator_is_locked_out(tmp_path):
    with _open(tmp_path):
        with pytest.raises(LeaseHeldError):
            _open(tmp_path)


def test_record_done_then_resume_replays_payload(tmp_path):
    with _open(tmp_path) as journal:
        journal.record_dispatched("u0", 0)
        journal.record_done("u0", {"rows": [1, 2, 3]}, 0.25)
        assert journal.stats.executed == 1
    with _open(tmp_path, resume=True) as resumed:
        assert resumed.is_done("u0")
        assert resumed.replayed["u0"] == {"rows": [1, 2, 3]}
        assert resumed.replayed_walls["u0"] == 0.25
        assert resumed.stats.replayed == 1
        assert not resumed.is_done("u1")


def test_fresh_open_wipes_prior_journal(tmp_path):
    with _open(tmp_path) as journal:
        journal.record_done("u0", "payload", 0.0)
    with _open(tmp_path) as fresh:  # resume=False: deliberate re-measure
        assert not fresh.is_done("u0")
        assert fresh.stats.replayed == 0


def test_resume_rejects_drifted_unit_list(tmp_path):
    run_id = derive_run_id("test", CONFIG)
    with _open(tmp_path) as journal:
        journal.record_done("u0", 1, 0.0)
    with pytest.raises(ValueError):
        _open(tmp_path, resume=True, units=["u0", "DIFFERENT"],
              run_id=run_id)


def test_resume_without_verification_adopts_manifest(tmp_path):
    run_id = derive_run_id("test", CONFIG)
    with _open(tmp_path) as journal:
        journal.record_done("u0", 1, 0.0)
    with _open(
        tmp_path, resume=True, units=["re", "derived"],
        run_id=run_id, verify_units=False,
    ) as resumed:
        assert resumed.units == UNITS  # the manifest's list wins


def test_corrupt_payload_demotes_unit_to_not_done(tmp_path):
    with _open(tmp_path) as journal:
        journal.record_done("u0", {"ok": True}, 0.0)
        path = _unit_file(journal.directory, "u0")
    with open(path, "wb") as handle:
        handle.write(b"bit-rot")
    with _open(tmp_path, resume=True) as resumed:
        assert not resumed.is_done("u0")  # digest mismatch: re-execute


def test_missing_payload_demotes_unit_to_not_done(tmp_path):
    with _open(tmp_path) as journal:
        journal.record_done("u0", {"ok": True}, 0.0)
        os.unlink(_unit_file(journal.directory, "u0"))
    with _open(tmp_path, resume=True) as resumed:
        assert not resumed.is_done("u0")


def test_last_done_record_wins_on_replay(tmp_path):
    with _open(tmp_path) as journal:
        journal.record_done("u0", "first", 0.0)
        journal.record_done("u0", "second", 0.0)
    with _open(tmp_path, resume=True) as resumed:
        assert resumed.replayed["u0"] == "second"


def test_quarantined_units_replay_unless_later_done(tmp_path):
    with _open(tmp_path) as journal:
        journal.record_quarantined("u1", "crash")
        journal.record_quarantined("u2", "timeout")
        journal.record_done("u2", "recovered", 0.0)  # retry succeeded
    with _open(tmp_path, resume=True) as resumed:
        assert resumed.replayed_quarantined == ["u1"]
        assert resumed.is_done("u2")


def test_seal_is_idempotent_and_replays(tmp_path):
    with _open(tmp_path) as journal:
        journal.seal("digest-a")
        journal.seal("ignored")
        assert journal.sealed_digest == "digest-a"
    with _open(tmp_path, resume=True) as resumed:
        assert resumed.sealed
        assert resumed.sealed_digest == "digest-a"


def test_cache_hit_completion_counts_cached(tmp_path):
    with _open(tmp_path) as journal:
        journal.record_done("u0", 1, 0.0, executed=False)
        assert journal.stats.cached == 1
        assert journal.stats.executed == 0


def test_kill_between_payload_and_record_reexecutes_unit(tmp_path):
    """Effect-before-intent: a kill after the pickle write but before
    the UNIT_DONE append leaves an orphan payload that replay ignores.
    """
    class Killed(Exception):
        pass

    journal = _open(tmp_path)
    try:
        blob = pickle.dumps("half-done")
        from repro.journal.run import _atomic_write

        _atomic_write(_unit_file(journal.directory, "u1"), blob)
    finally:
        journal.close()
    with _open(tmp_path, resume=True) as resumed:
        assert not resumed.is_done("u1")  # no record: unit re-executes
    del Killed


def test_torn_final_record_drops_exactly_one_unit(tmp_path):
    class Boom(Exception):
        pass

    os.environ["REPRO_JOURNAL_KILL_AFTER"] = "2"
    set_kill_action(lambda: (_ for _ in ()).throw(Boom()))
    try:
        journal = _open(tmp_path)
        journal.record_done("u0", "a", 0.0)  # append #1
        with pytest.raises(Boom):
            journal.record_done("u1", "b", 0.0)  # append #2: "killed"
        journal._log.close()
        journal._lease.release()
    finally:
        os.environ.pop("REPRO_JOURNAL_KILL_AFTER", None)
        set_kill_action(None)
    # The kill lands after the fsync, so u1's record is durable; the
    # stats update it interrupted is process state and simply lost.
    log = os.path.join(journal.directory, "log.bin")
    records, _valid = replay_records(log)
    assert [r["unit"] for r in records if r["kind"] == "UNIT_DONE"] == [
        "u0", "u1",
    ]
    with _open(tmp_path, resume=True) as resumed:
        assert resumed.is_done("u0")
        assert resumed.is_done("u1")


def test_journal_source_excluded_from_code_salt(tmp_path):
    from repro.cache.keys import _SALT_EXCLUDED_DIRS

    assert "journal" in _SALT_EXCLUDED_DIRS
