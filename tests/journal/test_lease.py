"""Lease ownership: exclusive claims, staleness, stealing, FileLock."""

import json
import os
import time

import pytest

from repro.journal.lease import (
    FileLock,
    Lease,
    LeaseHeldError,
    LeaseLostError,
)


@pytest.fixture()
def lease_path(tmp_path):
    return str(tmp_path / "run.lease")


def test_acquire_release_cycle(lease_path):
    lease = Lease(lease_path).acquire()
    assert lease.held
    assert os.path.exists(lease_path)
    lease.release()
    assert not lease.held
    assert not os.path.exists(lease_path)


def test_second_claimant_rejected_while_owner_lives(lease_path):
    first = Lease(lease_path).acquire()
    with pytest.raises(LeaseHeldError):
        Lease(lease_path).acquire()
    first.release()


def test_expired_lease_is_stolen(lease_path):
    first = Lease(lease_path, ttl_s=30.0).acquire()
    # Forge an expired lease owned by a live pid on another host: only
    # the expiry can make it stale.
    with open(lease_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "token": "other", "pid": os.getpid(),
                "host": "another-host", "expires_at": time.time() - 1.0,
            },
            handle,
        )
    second = Lease(lease_path).acquire()
    assert second.held
    second.release()
    first.release()  # token no longer ours: must not unlink or raise


def test_dead_local_pid_is_stolen_immediately(lease_path):
    import socket

    # An unexpired lease held by a dead pid on *this* host — the chaos
    # harness's post-SIGKILL resume case.  2**22 exceeds the default
    # pid_max, so the pid cannot be alive.
    with open(lease_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "token": "dead", "pid": 2**22,
                "host": socket.gethostname(),
                "expires_at": time.time() + 3600.0,
            },
            handle,
        )
    lease = Lease(lease_path).acquire()
    assert lease.held
    lease.release()


def test_live_foreign_host_lease_not_stolen(lease_path):
    with open(lease_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "token": "remote", "pid": 1, "host": "another-host",
                "expires_at": time.time() + 3600.0,
            },
            handle,
        )
    with pytest.raises(LeaseHeldError):
        Lease(lease_path).acquire()


def test_corrupt_lease_file_counts_as_stale(lease_path):
    with open(lease_path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    lease = Lease(lease_path).acquire()
    assert lease.held
    lease.release()


def test_renew_detects_theft(lease_path):
    lease = Lease(lease_path).acquire()
    with open(lease_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "token": "thief", "pid": os.getpid(),
                "host": "h", "expires_at": time.time() + 60.0,
            },
            handle,
        )
    with pytest.raises(LeaseLostError):
        lease.renew()
    assert not lease.held


def test_renew_pushes_expiry_forward(lease_path):
    lease = Lease(lease_path, ttl_s=60.0).acquire()
    with open(lease_path, "r", encoding="utf-8") as handle:
        before = json.load(handle)["expires_at"]
    time.sleep(0.01)
    lease.renew()
    with open(lease_path, "r", encoding="utf-8") as handle:
        after = json.load(handle)["expires_at"]
    assert after > before
    lease.release()


def test_release_never_unlinks_foreign_token(lease_path):
    lease = Lease(lease_path).acquire()
    with open(lease_path, "w", encoding="utf-8") as handle:
        json.dump({"token": "thief"}, handle)
    lease.release()
    assert os.path.exists(lease_path)  # the thief's claim survives


def test_filelock_serializes_critical_sections(tmp_path):
    path = str(tmp_path / "x.lock")
    order = []
    with FileLock(path):
        order.append("in")
        # A second claimant with a tiny timeout cannot get in.
        with pytest.raises(TimeoutError):
            with FileLock(path, timeout_s=0.05):
                order.append("never")
    order.append("out")
    with FileLock(path):  # released: immediately reacquirable
        order.append("again")
    assert order == ["in", "out", "again"]


def test_filelock_excludes_across_processes(tmp_path):
    """Two real processes × 200 locked increments → exactly 400.

    Pins claim atomicity: the lock file must never be observable
    half-written, or a contender reads it as corrupt-therefore-stale
    and steals a lock that is actively held (which shows up here as a
    lost increment).
    """
    import subprocess
    import sys

    lock = str(tmp_path / "counter.lock")
    counter = str(tmp_path / "counter.txt")
    with open(counter, "w") as handle:
        handle.write("0")
    script = (
        "import sys\n"
        "from repro.journal.lease import FileLock\n"
        "lock, counter = sys.argv[1], sys.argv[2]\n"
        "for _ in range(200):\n"
        "    with FileLock(lock):\n"
        "        with open(counter) as handle:\n"
        "            value = int(handle.read())\n"
        "        with open(counter, 'w') as handle:\n"
        "            handle.write(str(value + 1))\n"
    )
    env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, lock, counter], env=env
        )
        for _ in range(2)
    ]
    for proc in procs:
        assert proc.wait(timeout=120) == 0
    with open(counter) as handle:
        assert int(handle.read()) == 400
