"""Tests for the Synthetic periodic-batch workload."""

import pytest

from repro.node.cpu import CpuModel
from repro.sim import Kernel
from repro.sim.units import SEC
from repro.workloads.synthetic import SyntheticBatchWorkload


def make_workload(kernel, **kwargs):
    cpu = CpuModel(kernel, n_cores=8, nominal_freq_ghz=1.5, max_ipc=4.0)
    defaults = dict(period_us=10 * SEC)
    defaults.update(kwargs)
    return cpu, SyntheticBatchWorkload(kernel, cpu, **defaults)


def test_batches_alternate_with_idle():
    kernel = Kernel()
    cpu, workload = make_workload(kernel)
    workload.start()
    # arrivals at 0, 10, 20, 30 s; each batch takes ~5.5 s at nominal
    kernel.run(until=36 * SEC)
    assert workload.batches_completed == 4
    for start, end in workload.batch_windows:
        assert end > start
        assert (end - start) < 10 * SEC  # finishes before the next arrival


def test_default_batch_sizing_gives_expected_duty_cycle():
    kernel = Kernel()
    cpu, workload = make_workload(kernel)
    workload.start()
    kernel.run(until=50 * SEC)
    report = workload.performance()
    # default sizing: ~55% of the period at nominal frequency
    assert report.value == pytest.approx(5.5, rel=0.02)
    assert not report.higher_is_better


def test_overclocking_shortens_batches():
    kernel = Kernel()
    cpu, workload = make_workload(kernel)
    workload.start()
    kernel.run(until=10 * SEC)
    nominal_duration = workload.batch_windows[0]
    cpu.set_frequency(2.3)
    kernel.run(until=20 * SEC)
    overclocked_duration = workload.batch_windows[1]
    speedup = (nominal_duration[1] - nominal_duration[0]) / (
        overclocked_duration[1] - overclocked_duration[0]
    )
    assert speedup == pytest.approx(2.3 / 1.5, rel=0.01)


def test_on_batch_end_callbacks_fire():
    kernel = Kernel()
    _cpu, workload = make_workload(kernel)
    seen = []
    workload.on_batch_end.append(lambda index: seen.append(index))
    workload.start()
    kernel.run(until=26 * SEC)  # batches end at ~5.5, 15.5, 25.5 s
    assert seen == [0, 1, 2]


def test_n_batches_stops_the_workload():
    kernel = Kernel()
    cpu, workload = make_workload(kernel, n_batches=2)
    workload.start()
    kernel.run(until=60 * SEC)
    assert workload.batches_completed == 2
    assert cpu.utilization == 0.0  # left idle


def test_performance_before_any_batch_raises():
    kernel = Kernel()
    _cpu, workload = make_workload(kernel)
    with pytest.raises(ValueError):
        workload.performance()


def test_double_start_rejected():
    kernel = Kernel()
    _cpu, workload = make_workload(kernel)
    workload.start()
    with pytest.raises(RuntimeError):
        workload.start()
