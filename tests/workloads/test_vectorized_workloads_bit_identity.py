"""Bit-identity: vectorized workload/substrate loops vs the frozen copies.

The cached-rate ``CpuModel``, the index-cached ``TieredMemory``, the
snapshot-free ``TailBenchWorkload`` window accounting, the pow-cached
CPU workloads, and the weight-memoized Zipf traces must reproduce the
frozen pre-optimization implementations in
``repro.perf.legacy_workloads`` *exactly* — same counters, same
samples, same rates, same scan results — under identical random streams
and identical driving sequences.  Anything less would silently flip the
pinned fleet/artifact digests.

Substrate objects are driven on real kernels whose clock is advanced
directly (no processes are involved; only ``kernel.now`` matters), and
workload ``_run`` generators are stepped in lockstep by sending their
yielded delays back as elapsed time — the same pattern the workloads
microbenchmarks use.
"""

import numpy as np
import pytest

import repro.perf.legacy_workloads as legacy
from repro.node.cpu import CpuModel
from repro.node.hypervisor import Hypervisor
from repro.node.memory import TieredMemory, Tier
from repro.sim import Kernel
from repro.workloads.diskspeed import DiskSpeedWorkload
from repro.workloads.objectstore import ObjectStoreWorkload
from repro.workloads.tailbench import IMAGE_DNN, MOSES, TailBenchWorkload
from repro.workloads.traces import (
    OBJECTSTORE_MEM,
    SPECJBB_MEM,
    SQL_MEM,
    ZipfMemoryTrace,
    zipf_rates,
)


def _advance(kernels, delta_us):
    for kernel in kernels:
        kernel._now += delta_us


def _assert_cpu_equal(live_cpu, frozen_cpu):
    got = live_cpu.snapshot()
    want = frozen_cpu.snapshot()
    assert got == want
    assert live_cpu.ips_rate() == frozen_cpu.ips_rate()
    assert live_cpu.instantaneous_watts() == frozen_cpu.instantaneous_watts()
    assert live_cpu.alpha == frozen_cpu.alpha


@pytest.mark.parametrize("seed", [0, 1])
def test_cpu_model_lockstep_1k_steps(seed):
    """Cached-rate accounting == per-accrual recomputation, bit for bit."""
    k_live, k_frozen = Kernel(), Kernel()
    live = CpuModel(k_live)
    frozen = legacy.CpuModel(k_frozen)
    drive = np.random.default_rng(seed)
    for step in range(1000):
        _advance((k_live, k_frozen), int(drive.integers(1, 500_000)))
        roll = drive.random()
        if roll < 0.6:
            utilization = float(drive.uniform(0.0, 1.0))
            boundness = float(drive.uniform(0.0, 1.0))
            scaling = float(drive.uniform(0.0, 1.0))
            live.set_phase(utilization, boundness, scaling)
            frozen.set_phase(utilization, boundness, scaling)
        elif roll < 0.8:
            freq = float(drive.uniform(0.8, 3.0))
            assert live.set_frequency(freq) == frozen.set_frequency(freq)
        if step % 7 == 0:
            _assert_cpu_equal(live, frozen)
    _assert_cpu_equal(live, frozen)


def test_cpu_model_utilization_only_phase_flips():
    """The pow cache path: thousands of phase flips at constant freq."""
    k_live, k_frozen = Kernel(), Kernel()
    live = CpuModel(k_live)
    frozen = legacy.CpuModel(k_frozen)
    drive = np.random.default_rng(3)
    live.set_frequency(2.1)
    frozen.set_frequency(2.1)
    for _ in range(2000):
        _advance((k_live, k_frozen), 200_000)
        utilization = float(drive.uniform(0.3, 1.0))
        live.set_phase(utilization, boundness=0.9, freq_scaling=0.9)
        frozen.set_phase(utilization, boundness=0.9, freq_scaling=0.9)
    _assert_cpu_equal(live, frozen)


@pytest.mark.parametrize("seed", [0, 2])
def test_tiered_memory_lockstep_1k_ops(seed):
    """Index-cached accrual == boolean-mask accrual across scan/migrate."""
    k_live, k_frozen = Kernel(), Kernel()
    n_regions = 96
    live = TieredMemory(
        k_live, n_regions=n_regions, pages_per_region=512,
        rng=np.random.default_rng(seed),
    )
    frozen = legacy.TieredMemory(
        k_frozen, n_regions=n_regions, pages_per_region=512,
        rng=np.random.default_rng(seed),
    )
    live.set_scan_fault_probability(0.05)
    frozen.set_scan_fault_probability(0.05)
    drive = np.random.default_rng(seed + 100)
    rates = drive.uniform(0.0, 5000.0, n_regions)
    live.set_rates(rates)
    frozen.set_rates(rates)
    for step in range(1000):
        _advance((k_live, k_frozen), int(drive.integers(1, 2_000_000)))
        roll = drive.random()
        if roll < 0.5:
            region = int(drive.integers(0, n_regions))
            assert live.scan(region) == frozen.scan(region)
        elif roll < 0.8:
            region = int(drive.integers(0, n_regions))
            tier = Tier.REMOTE if drive.random() < 0.5 else Tier.LOCAL
            assert live.migrate(region, tier) == frozen.migrate(region, tier)
        else:
            rates = drive.uniform(0.0, 5000.0, n_regions)
            live.set_rates(rates)
            frozen.set_rates(rates)
        if step % 13 == 0:
            assert live.snapshot() == frozen.snapshot()
            assert live.n_local == frozen.n_local
            assert np.array_equal(live.local_regions, frozen.local_regions)
            assert np.array_equal(live.remote_regions, frozen.remote_regions)
            assert np.array_equal(
                live.true_region_accesses(), frozen.true_region_accesses()
            )
    assert live.snapshot() == frozen.snapshot()


def _drive_lockstep(kernels, generators, steps, on_step=None):
    """Step workload generators together, sending elapsed time back."""
    delays = [next(gen) for gen in generators]
    for step in range(steps):
        assert len(set(delays)) == 1  # loops must stay in lockstep
        _advance(kernels, delays[0])
        if on_step is not None:
            on_step(step)
        delays = [gen.send(None) for gen in generators]


@pytest.mark.parametrize("profile", [IMAGE_DNN, MOSES])
def test_tailbench_lockstep_1k_steps(profile):
    """Batch-window accounting == per-step snapshot deltas, bit for bit."""
    k_live, k_frozen = Kernel(), Kernel()
    hv_live = Hypervisor(k_live, n_cores=8, history_horizon_us=1_000_000)
    hv_frozen = legacy.Hypervisor(
        k_frozen, n_cores=8, history_horizon_us=1_000_000
    )
    live = TailBenchWorkload(
        k_live, hv_live, np.random.default_rng(11), profile
    )
    frozen = legacy.TailBenchWorkload(
        k_frozen, hv_frozen, np.random.default_rng(11), profile
    )
    drive = np.random.default_rng(17)

    def churn(step):
        # Harvest churn creates real deficits so the starvation branch
        # (deficit_ratio > 0) is exercised, not just the zero path.
        if step % 5 == 0:
            harvested = int(drive.integers(0, 8))
            hv_live.set_harvested(harvested)
            hv_frozen.set_harvested(harvested)

    _drive_lockstep(
        (k_live, k_frozen), (live._run(), frozen._run()), 1000, churn
    )
    assert live.latency_samples_ms == frozen.latency_samples_ms
    assert any(s > profile.base_latency_ms * 1.3
               for s in live.latency_samples_ms)
    assert live.performance() == frozen.performance()
    assert hv_live.snapshot() == hv_frozen.snapshot()


def test_objectstore_lockstep_1k_steps():
    """Pow-cached request accounting == per-sample recomputation."""
    k_live, k_frozen = Kernel(), Kernel()
    cpu_live = CpuModel(k_live)
    cpu_frozen = legacy.CpuModel(k_frozen)
    live = ObjectStoreWorkload(k_live, cpu_live, np.random.default_rng(5))
    frozen = legacy.ObjectStoreWorkload(
        k_frozen, cpu_frozen, np.random.default_rng(5)
    )
    drive = np.random.default_rng(23)

    def agent(step):
        if step % 37 == 0:  # the agent's occasional frequency action
            freq = float(drive.uniform(1.5, 2.3))
            cpu_live.set_frequency(freq)
            cpu_frozen.set_frequency(freq)

    _drive_lockstep(
        (k_live, k_frozen), (live._run(), frozen._run()), 1000, agent
    )
    assert live.latency_samples_ms == frozen.latency_samples_ms
    assert live.performance() == frozen.performance()
    _assert_cpu_equal(cpu_live, cpu_frozen)


def test_diskspeed_lockstep_1k_steps():
    k_live, k_frozen = Kernel(), Kernel()
    cpu_live = CpuModel(k_live)
    cpu_frozen = legacy.CpuModel(k_frozen)
    live = DiskSpeedWorkload(k_live, cpu_live, np.random.default_rng(9))
    frozen = legacy.DiskSpeedWorkload(
        k_frozen, cpu_frozen, np.random.default_rng(9)
    )
    drive = np.random.default_rng(29)

    def agent(step):
        if step % 41 == 0:
            freq = float(drive.uniform(1.5, 2.3))
            cpu_live.set_frequency(freq)
            cpu_frozen.set_frequency(freq)

    _drive_lockstep(
        (k_live, k_frozen), (live._run(), frozen._run()), 1000, agent
    )
    assert live.throughput_samples == frozen.throughput_samples
    assert live.performance() == frozen.performance()
    _assert_cpu_equal(cpu_live, cpu_frozen)


@pytest.mark.parametrize("profile", [OBJECTSTORE_MEM, SQL_MEM, SPECJBB_MEM])
def test_zipf_rates_match_legacy(profile):
    """Memoized scaled weights == per-call rebuild, for every profile."""
    rng = np.random.default_rng(1)
    for n_regions in (16, 96, 256):
        permutation = rng.permutation(n_regions)
        assert np.array_equal(
            zipf_rates(n_regions, profile, permutation),
            legacy.zipf_rates(n_regions, profile, permutation),
        )


def test_zipf_trace_lockstep_shift_cycles():
    """Buffer-reusing rate pushes == fresh-vector pushes over 200 shifts."""
    k_live, k_frozen = Kernel(), Kernel()
    n_regions = 128
    mem_live = TieredMemory(k_live, n_regions=n_regions)
    mem_frozen = legacy.TieredMemory(k_frozen, n_regions=n_regions)
    live = ZipfMemoryTrace(
        k_live, mem_live, np.random.default_rng(2), SQL_MEM
    )
    frozen = legacy.ZipfMemoryTrace(
        k_frozen, mem_frozen, np.random.default_rng(2), SQL_MEM
    )
    assert np.array_equal(live.permutation, frozen.permutation)
    _drive_lockstep((k_live, k_frozen), (live._run(), frozen._run()), 200)
    assert live.shifts == frozen.shifts == 200
    assert np.array_equal(live.permutation, frozen.permutation)
    assert np.array_equal(mem_live.rates, mem_frozen.rates)
    assert mem_live.snapshot() == mem_frozen.snapshot()
    assert live.performance() == frozen.performance()
