"""Tests for TailBench-style demand workloads."""

import pytest

from repro.node.hypervisor import Hypervisor
from repro.sim import Kernel, RngStreams
from repro.sim.units import MS, SEC
from repro.workloads.tailbench import IMAGE_DNN, MOSES, TailBenchWorkload


def run_workload(profile, seconds=30, harvested=0, seed=0, horizon=None):
    kernel = Kernel()
    hv = Hypervisor(
        kernel, n_cores=8,
        history_horizon_us=horizon if horizon else 500 * MS,
    )
    hv.set_harvested(harvested)
    workload = TailBenchWorkload(
        kernel, hv, RngStreams(seed).get(profile.name), profile
    ).start()
    kernel.run(until=seconds * SEC)
    return workload, hv


def test_demand_stays_in_physical_range():
    workload, hv = run_workload(IMAGE_DNN)
    assert 0.0 <= hv.demand <= 8.0


def test_latency_near_base_when_unharvested():
    workload, _hv = run_workload(IMAGE_DNN)
    report = workload.performance()
    # with all cores available there is no starvation: P99 is just jitter
    assert report.value == pytest.approx(
        IMAGE_DNN.base_latency_ms, rel=0.35
    )


def test_aggressive_harvesting_inflates_p99():
    gentle, _ = run_workload(IMAGE_DNN, harvested=0)
    starved, _ = run_workload(IMAGE_DNN, harvested=6)  # only 2 cores left
    # preemption bounds each step's damage, so inflation is capped
    # (~1 + starvation_penalty at full starvation)
    assert starved.performance().value > 1.3 * gentle.performance().value


def test_bursts_reach_burst_level():
    # max_demand_over only sees the retained history horizon, so keep
    # the full run in history for this check.
    workload, hv = run_workload(IMAGE_DNN, seconds=60, horizon=60 * SEC)
    assert hv.max_demand_over(60 * SEC) >= IMAGE_DNN.burst_cores - 1.0


def test_moses_is_lighter_than_image_dnn():
    kernel_a = Kernel()
    hv_a = Hypervisor(kernel_a, n_cores=8)
    dnn = TailBenchWorkload(
        kernel_a, hv_a, RngStreams(1).get("dnn"), IMAGE_DNN
    ).start()
    kernel_a.run(until=60 * SEC)
    kernel_b = Kernel()
    hv_b = Hypervisor(kernel_b, n_cores=8)
    moses = TailBenchWorkload(
        kernel_b, hv_b, RngStreams(1).get("moses"), MOSES
    ).start()
    kernel_b.run(until=60 * SEC)
    demand_dnn = hv_a.snapshot().demand_cus
    demand_moses = hv_b.snapshot().demand_cus
    assert demand_moses < demand_dnn


def test_latency_samples_accumulate_each_step():
    workload, _ = run_workload(MOSES, seconds=10)
    # one sample per 25 ms step
    assert len(workload.latency_samples_ms) == pytest.approx(400, abs=2)


def test_reproducible_with_seed():
    a, _ = run_workload(IMAGE_DNN, seconds=10, seed=3)
    b, _ = run_workload(IMAGE_DNN, seconds=10, seed=3)
    assert a.latency_samples_ms == b.latency_samples_ms
