"""PerformanceReport.normalized_against: value semantics + error paths."""

import pytest

from repro.workloads.base import PerformanceReport


def _report(metric="p99 latency (ms)", value=10.0, higher_is_better=False):
    return PerformanceReport(
        metric=metric, value=value, higher_is_better=higher_is_better
    )


def test_lower_is_better_normalization_inverts():
    fast = _report(value=5.0)
    slow = _report(value=10.0)
    assert fast.normalized_against(slow) == 2.0
    assert slow.normalized_against(fast) == 0.5


def test_higher_is_better_normalization_divides():
    high = _report("throughput (req/s)", 6000.0, True)
    low = _report("throughput (req/s)", 3000.0, True)
    assert high.normalized_against(low) == 2.0
    assert low.normalized_against(high) == 0.5


def test_mismatched_metrics_raise_with_both_names():
    latency = _report()
    throughput = _report("throughput (req/s)", 5000.0, True)
    with pytest.raises(ValueError) as excinfo:
        latency.normalized_against(throughput)
    assert "p99 latency (ms)" in str(excinfo.value)
    assert "throughput (req/s)" in str(excinfo.value)


@pytest.mark.parametrize("bad_value", [0.0, -1.0])
def test_nonpositive_baseline_raises(bad_value):
    with pytest.raises(ValueError, match="positive"):
        _report().normalized_against(_report(value=bad_value))


@pytest.mark.parametrize("bad_value", [0.0, -3.5])
def test_nonpositive_own_value_raises(bad_value):
    with pytest.raises(ValueError, match="positive"):
        _report(value=bad_value).normalized_against(_report())


def test_normalizing_against_self_is_unity():
    report = _report(value=7.25)
    assert report.normalized_against(report) == 1.0
