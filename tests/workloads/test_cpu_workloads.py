"""Tests for ObjectStore and DiskSpeed CPU workloads."""

import pytest

from repro.node.cpu import CpuModel
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.diskspeed import DiskSpeedWorkload
from repro.workloads.objectstore import ObjectStoreWorkload


def make_cpu(kernel):
    return CpuModel(kernel, n_cores=8, nominal_freq_ghz=1.5, max_ipc=4.0)


def run_objectstore(freq, seconds=60, seed=0):
    kernel = Kernel()
    cpu = make_cpu(kernel)
    workload = ObjectStoreWorkload(
        kernel, cpu, RngStreams(seed).get("objstore")
    ).start()
    cpu.set_frequency(freq)
    kernel.run(until=seconds * SEC)
    return workload.performance(), cpu.snapshot()


def test_objectstore_latency_improves_with_overclocking():
    nominal, _ = run_objectstore(1.5)
    overclocked, _ = run_objectstore(2.3)
    assert overclocked.value < nominal.value
    # speedup should be close to (2.3/1.5)^0.9
    assert nominal.value / overclocked.value == pytest.approx(
        (2.3 / 1.5) ** 0.9, rel=0.1
    )


def test_objectstore_power_rises_with_overclocking():
    _, nominal_snap = run_objectstore(1.5)
    _, oc_snap = run_objectstore(2.3)
    assert oc_snap.energy_joules > nominal_snap.energy_joules


def test_objectstore_alpha_is_high():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    ObjectStoreWorkload(kernel, cpu, RngStreams(0).get("o")).start()
    kernel.run(until=5 * SEC)
    assert cpu.alpha > 0.7  # CPU-bound: worth overclocking


def run_diskspeed(freq, seconds=60, seed=0):
    kernel = Kernel()
    cpu = make_cpu(kernel)
    workload = DiskSpeedWorkload(
        kernel, cpu, RngStreams(seed).get("disk")
    ).start()
    cpu.set_frequency(freq)
    kernel.run(until=seconds * SEC)
    return workload.performance(), cpu


def test_diskspeed_throughput_insensitive_to_frequency():
    nominal, _ = run_diskspeed(1.5)
    overclocked, _ = run_diskspeed(2.3)
    assert overclocked.value / nominal.value == pytest.approx(1.0, abs=0.05)
    assert nominal.higher_is_better


def test_diskspeed_alpha_is_low():
    _, cpu = run_diskspeed(1.5)
    assert cpu.alpha < 0.2  # stalled on IO: overclocking is waste


def test_reports_reproducible_with_seed():
    a, _ = run_objectstore(1.5, seconds=20, seed=7)
    b, _ = run_objectstore(1.5, seconds=20, seed=7)
    assert a.value == b.value


def test_normalization_directions():
    nominal, _ = run_objectstore(1.5, seconds=20)
    overclocked, _ = run_objectstore(2.3, seconds=20)
    # lower latency -> normalized performance > 1
    assert overclocked.normalized_against(nominal) > 1.0
