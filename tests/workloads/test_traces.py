"""Tests for Zipf memory traces and the oscillating stress workload."""

import numpy as np
import pytest

from repro.node.memory import TieredMemory
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.traces import (
    OBJECTSTORE_MEM,
    SPECJBB_MEM,
    OscillatingMemoryTrace,
    ZipfMemoryTrace,
    zipf_rates,
)


def make_trace(kernel, profile=OBJECTSTORE_MEM, n_regions=64, seed=0):
    memory = TieredMemory(kernel, n_regions=n_regions, pages_per_region=512)
    trace = ZipfMemoryTrace(
        kernel, memory, RngStreams(seed).get("trace"), profile
    )
    return memory, trace


def test_zipf_rates_sum_to_total():
    permutation = np.arange(64)
    rates = zipf_rates(64, OBJECTSTORE_MEM, permutation)
    assert rates.sum() == pytest.approx(OBJECTSTORE_MEM.total_rate)


def test_zipf_rates_cold_fraction_is_zero():
    permutation = np.arange(100)
    rates = zipf_rates(100, OBJECTSTORE_MEM, permutation)
    n_active = int(round(OBJECTSTORE_MEM.active_fraction * 100))
    assert np.count_nonzero(rates) == n_active


def test_zipf_skew_top_region_dominates():
    permutation = np.arange(64)
    rates = zipf_rates(64, OBJECTSTORE_MEM, permutation)
    assert rates.max() > 10 * np.median(rates[rates > 0])


def test_trace_applies_rates_on_start():
    kernel = Kernel()
    memory, trace = make_trace(kernel)
    trace.start()
    kernel.run(until=1 * SEC)
    assert memory.rates.sum() == pytest.approx(OBJECTSTORE_MEM.total_rate)


def test_popularity_shift_changes_ranking_but_not_total():
    kernel = Kernel()
    memory, trace = make_trace(kernel)
    trace.start()
    kernel.run(until=1 * SEC)
    before = memory.rates
    kernel.run(until=OBJECTSTORE_MEM.shift_interval_us + 1 * SEC)
    after = memory.rates
    assert trace.shifts >= 1
    assert not np.array_equal(before, after)
    assert after.sum() == pytest.approx(before.sum())


def test_oscillating_trace_sleeps_and_wakes():
    kernel = Kernel()
    memory = TieredMemory(kernel, n_regions=64, pages_per_region=512)
    trace = OscillatingMemoryTrace(
        kernel,
        memory,
        RngStreams(0).get("osc"),
        SPECJBB_MEM,
        active_us=20 * SEC,
        sleep_us=10 * SEC,
    )
    trace.start()
    kernel.run(until=5 * SEC)
    active_rate = memory.rates.sum()
    kernel.run(until=25 * SEC)  # inside the sleep phase
    sleep_rate = memory.rates.sum()
    assert sleep_rate < 0.1 * active_rate
    kernel.run(until=35 * SEC)  # woke again
    assert memory.rates.sum() == pytest.approx(active_rate, rel=0.01)
    assert [phase for _t, phase in trace.phase_log[:3]] == [
        "active", "sleep", "active",
    ]


def test_oscillating_wake_reshuffles_popularity():
    kernel = Kernel()
    memory = TieredMemory(kernel, n_regions=128, pages_per_region=512)
    trace = OscillatingMemoryTrace(
        kernel,
        memory,
        RngStreams(1).get("osc"),
        SPECJBB_MEM,
        active_us=20 * SEC,
        sleep_us=10 * SEC,
        wake_shift_fraction=0.5,
    )
    trace.start()
    kernel.run(until=5 * SEC)
    before = memory.rates
    kernel.run(until=35 * SEC)  # one full cycle: wake reshuffled
    after = memory.rates
    # at least some of the top regions changed
    top_before = set(np.argsort(before)[-10:])
    top_after = set(np.argsort(after)[-10:])
    assert top_before != top_after


def test_local_fraction_performance_metric():
    kernel = Kernel()
    memory, trace = make_trace(kernel)
    trace.start()
    kernel.run(until=10 * SEC)
    report = trace.performance()
    assert report.value == pytest.approx(1.0)  # everything still local
    assert report.higher_is_better


# -- shift_popularity invariants (satellite coverage) ------------------------


def test_shift_popularity_preserves_permutation():
    """However many shifts run, the ranking stays a permutation."""
    kernel = Kernel()
    memory, trace = make_trace(kernel, n_regions=96)
    for _ in range(50):
        trace.shift_popularity()
        assert sorted(trace.permutation) == list(range(96))


def test_shift_popularity_counts_shifts():
    kernel = Kernel()
    _memory, trace = make_trace(kernel)
    assert trace.shifts == 0
    for expected in range(1, 8):
        trace.shift_popularity()
        assert trace.shifts == expected


def test_shift_popularity_deterministic_under_seeded_generator():
    """Same seed, same shift sequence — permutation histories agree."""
    histories = []
    for _ in range(2):
        kernel = Kernel()
        _memory, trace = make_trace(kernel, seed=13)
        history = [trace.permutation.copy()]
        for _shift in range(20):
            trace.shift_popularity()
            history.append(trace.permutation.copy())
        histories.append(history)
    for first, second in zip(*histories):
        assert np.array_equal(first, second)


def test_shift_popularity_rotates_only_active_ranks():
    """Cold ranks (beyond the active fraction) never change hands."""
    kernel = Kernel()
    _memory, trace = make_trace(kernel, n_regions=100)
    n_active = int(round(OBJECTSTORE_MEM.active_fraction * 100))
    cold_before = trace.permutation[n_active:].copy()
    for _ in range(25):
        trace.shift_popularity()
    assert np.array_equal(trace.permutation[n_active:], cold_before)
