"""Pin the RNG identities the batched workload draw paths rely on.

The vectorized CPU workloads pull blocks of ``standard_normal`` draws
and apply the distribution transforms themselves (DESIGN.md §8).  That
is only sound because, for numpy's ``Generator``:

* a size-N draw consumes the bit stream exactly like N scalar draws;
* ``normal(loc, scale)`` is ``loc + scale * standard_normal()`` with
  plain (unfused) IEEE double arithmetic;
* ``lognormal(0, sigma)`` is libm's ``exp`` of ``sigma * z`` — the same
  ``exp`` as ``math.exp`` (NOT ``np.exp``, whose SIMD path differs in
  the last ulp for a few percent of draws — see DESIGN.md §6).

If any of these ever breaks (numpy build with FMA contraction, a
different libm), this file fails loudly instead of the golden digests
drifting silently.
"""

import math

import numpy as np


def test_batched_standard_normal_matches_sequential():
    batch = np.random.default_rng(7).standard_normal(1000)
    rng = np.random.default_rng(7)
    sequential = np.array([rng.standard_normal() for _ in range(1000)])
    assert np.array_equal(batch, sequential)


def test_batched_uniform_and_integers_match_sequential():
    batch_rng, seq_rng = np.random.default_rng(3), np.random.default_rng(3)
    assert np.array_equal(
        batch_rng.random(500),
        np.array([seq_rng.random() for _ in range(500)]),
    )
    batch_rng, seq_rng = np.random.default_rng(4), np.random.default_rng(4)
    assert np.array_equal(
        batch_rng.integers(2, 11, size=500),
        np.array([seq_rng.integers(2, 11) for _ in range(500)]),
    )


def test_normal_is_affine_standard_normal():
    api, manual = np.random.default_rng(7), np.random.default_rng(7)
    for _ in range(2000):
        assert api.normal(0.95, 0.02) == 0.95 + 0.02 * manual.standard_normal()


def test_lognormal_is_math_exp_of_scaled_standard_normal():
    api, manual = np.random.default_rng(9), np.random.default_rng(9)
    for _ in range(2000):
        want = api.lognormal(0.0, 0.08)
        assert want == math.exp(0.08 * manual.standard_normal())


def test_standard_normal_out_matches_fresh_allocation():
    """The refill path uses ``out=``; it must be the same draw sequence."""
    with_out, fresh = np.random.default_rng(11), np.random.default_rng(11)
    buffer = np.empty(512)
    with_out.standard_normal(out=buffer)
    assert np.array_equal(buffer, fresh.standard_normal(512))


def test_strided_affine_transform_matches_scalar_ops():
    """The even/odd interleave transform is elementwise-exact."""
    z = np.random.default_rng(13).standard_normal(512)
    out = np.empty(256)
    np.multiply(z[0::2], 0.02, out=out)
    out += 0.95
    for k in range(256):
        assert out[k] == 0.95 + 0.02 * z[2 * k]
