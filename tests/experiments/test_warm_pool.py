"""The process-wide warm worker pool and the single-chunk inline fix."""

import pytest

from repro.experiments import driver
from repro.experiments.driver import (
    FleetDriver,
    reproduce_all,
    shared_pool,
    shutdown_shared_pool,
)
from repro.fleet.config import FleetConfig
from repro.fleet.scenario import FleetScenario


def test_shared_pool_is_reused_across_calls():
    shutdown_shared_pool()
    first = shared_pool(2)
    assert shared_pool(2) is first
    assert shared_pool(1) is first  # smaller requests reuse the pool


def test_shared_pool_grows_on_larger_request():
    shutdown_shared_pool()
    small = shared_pool(1)
    grown = shared_pool(3)
    assert grown is not small
    assert shared_pool(2) is grown  # and stays at the high-water mark


def test_shared_pool_rejects_nonpositive():
    with pytest.raises(ValueError):
        shared_pool(0)


def test_shutdown_is_idempotent():
    shutdown_shared_pool()
    shutdown_shared_pool()
    assert shared_pool(1) is not None


def test_fleet_driver_reuses_warm_pool_and_matches_serial():
    shutdown_shared_pool()
    config = FleetConfig(n_nodes=4, agent="mixed", seed=3, duration_s=10)
    serial = FleetDriver(config, workers=1).run()
    parallel_first = FleetDriver(config, workers=2).run()
    pool_after_first = driver._shared_pool
    assert pool_after_first is not None
    parallel_second = FleetDriver(config, workers=2).run()
    assert driver._shared_pool is pool_after_first  # no respawn
    assert serial.digest() == parallel_first.digest()
    assert serial.digest() == parallel_second.digest()


def test_single_chunk_runs_inline_without_pool(monkeypatch):
    """A one-chunk work list must not spawn (or borrow) a pool."""
    config = FleetConfig(n_nodes=4, agent="overclock", seed=7, duration_s=10)
    expected = FleetScenario(config).run_fleet()
    fleet_driver = FleetDriver(config, workers=2)
    all_nodes = tuple(range(config.n_nodes))
    monkeypatch.setattr(
        FleetDriver, "chunks", lambda self: [all_nodes]
    )

    def poisoned_pool(workers):
        raise AssertionError("single-chunk run requested a pool")

    monkeypatch.setattr(driver, "shared_pool", poisoned_pool)
    aggregate = fleet_driver.run()
    assert aggregate.digest() == expected.digest()


def test_multi_chunk_config_never_yields_single_chunk():
    """The organic chunking always produces >= workers chunks, so the
    inline path is a guard, not a behavior change, for real configs."""
    for nodes, workers in ((2, 2), (5, 2), (16, 4), (64, 8)):
        config = FleetConfig(n_nodes=nodes, agent="overclock", seed=0,
                             duration_s=5)
        chunks = FleetDriver(config, workers=workers).chunks()
        assert len(chunks) >= min(workers, nodes)


def test_reproduce_all_shares_the_fleet_pool():
    shutdown_shared_pool()
    config = FleetConfig(n_nodes=4, agent="harvest", seed=1, duration_s=10)
    FleetDriver(config, workers=2).run()
    pool = driver._shared_pool
    assert pool is not None
    runs = reproduce_all(
        only=["table1", "table2"], scale=0.05, parallel=True, workers=2
    )
    assert [run.name for run in runs] == ["table1", "table2"]
    assert driver._shared_pool is pool  # same warm pool served the pass


def test_one_pool_serves_fleet_reproduce_and_sweep():
    """Every pooled pipeline draws from the same warm supervised pool
    in one process — no per-subsystem pools, no respawns between them."""
    from repro.sweep import CampaignSpec, FaultAxis, SweepRunner

    shutdown_shared_pool()
    config = FleetConfig(n_nodes=4, agent="overclock", seed=2,
                         duration_s=10)
    FleetDriver(config, workers=2).run()
    pool = driver._shared_pool
    assert pool is not None
    reproduce_all(only=["table1"], scale=0.05, parallel=True, workers=2)
    assert driver._shared_pool is pool
    spec = CampaignSpec(
        name="warm-pool", agents=("overclock",), scales=(2,), seeds=(0,),
        duration_s=15, rack_size=1,
        faults=(
            FaultAxis(kind="bad_data", intensities=(0.9,), start_s=3,
                      duration_s=8, racks=(0,)),
        ),
    )
    SweepRunner(spec, workers=2).run()
    assert driver._shared_pool is pool  # sweep reused it too


def test_shutdown_terminates_worker_processes():
    shutdown_shared_pool()
    pool = shared_pool(2)
    processes = [w.process for w in pool._workers.values()]
    assert all(p.is_alive() for p in processes)
    shutdown_shared_pool()
    assert driver._shared_pool is None
    assert all(not p.is_alive() for p in processes)
    shutdown_shared_pool()  # idempotent with nothing live
