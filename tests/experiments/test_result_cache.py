"""Incremental reproduction: the content-addressed result cache.

Covers the key derivation (code salt, kwargs canonicalization), the
on-disk store (round-trip exactness, atomicity debris, corrupt-object
degradation), and the driver integration: a cold ``reproduce_all``
executes and stores every unit, a warm one executes zero and assembles
row-identical results — serially and through the sharded pool — and
recorded unit walls feed the longest-first dispatch.
"""

import os
import pickle

import pytest

from repro.cache import ResultCache, code_salt, unit_key
from repro.cache.store import CACHE_DIR_ENV, default_cache_dir
from repro.experiments import driver
from repro.experiments.common import experiment_digest
from repro.experiments.driver import reproduce_all


# -- keys --------------------------------------------------------------------


def test_code_salt_is_stable_within_process():
    assert code_salt() == code_salt()
    assert len(code_salt()) == 64


def test_unit_key_sensitivity():
    base = unit_key("fig2", "ObjectStore/guarded", 0.33, {"seconds": 198})
    assert base == unit_key(
        "fig2", "ObjectStore/guarded", 0.33, {"seconds": 198}
    )
    assert base != unit_key("fig3", "ObjectStore/guarded", 0.33,
                            {"seconds": 198})
    assert base != unit_key("fig2", "DiskSpeed/guarded", 0.33,
                            {"seconds": 198})
    assert base != unit_key("fig2", "ObjectStore/guarded", 1.0,
                            {"seconds": 198})
    assert base != unit_key("fig2", "ObjectStore/guarded", 0.33,
                            {"seconds": 600})
    assert base != unit_key("fig2", None, 0.33, {"seconds": 198})


def test_unit_key_changes_with_code_salt():
    one = unit_key("fig2", "x", 1.0, {}, salt="a" * 64)
    two = unit_key("fig2", "x", 1.0, {}, salt="b" * 64)
    assert one != two


def test_unit_key_float_kwargs_are_exact():
    close_a = unit_key("fig1", None, 1.0, {"threshold": 0.1 + 0.2})
    close_b = unit_key("fig1", None, 1.0, {"threshold": 0.3})
    assert close_a != close_b  # repr-exact floats, no rounding collisions


def test_default_cache_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
    assert default_cache_dir() == str(tmp_path / "elsewhere")
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert default_cache_dir().endswith(".repro-cache")


# -- store -------------------------------------------------------------------


def test_store_round_trips_payloads_exactly(tmp_path):
    cache = ResultCache(str(tmp_path))
    payload = {
        "floats": [0.1, 1e-300, float("inf")],
        "nested": {"ints": (1, 2, 3), "flag": True, "none": None},
    }
    cache.put("ab" * 32, payload)
    loaded = cache.get("ab" * 32)
    assert loaded == payload
    assert loaded["floats"][0].hex() == payload["floats"][0].hex()
    assert cache.stats.stores == 1 and cache.stats.hits == 1


def test_store_miss_counts_and_default(tmp_path):
    cache = ResultCache(str(tmp_path))
    sentinel = object()
    assert cache.get("cd" * 32, sentinel) is sentinel
    assert cache.stats.misses == 1
    assert ("cd" * 32) not in cache


def test_corrupt_object_degrades_to_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("ef" * 32, [1, 2, 3])
    path = cache._object_path("ef" * 32)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    fresh = ResultCache(str(tmp_path))
    assert fresh.get("ef" * 32, None) is None
    assert fresh.stats.misses == 1
    fresh.put("ef" * 32, [4])  # re-store over the corrupt object
    assert fresh.get("ef" * 32) == [4]


def test_corrupt_object_is_moved_to_quarantine(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = "ef" * 32
    cache.put(key, [1, 2, 3])
    path = cache._object_path(key)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    fresh = ResultCache(str(tmp_path))
    assert fresh.get(key, None) is None
    assert fresh.stats.corrupt == 1
    # The evidence moved aside; the slot is free for a fresh store.
    assert not os.path.exists(path)
    quarantined = os.path.join(fresh.quarantine_dir, f"{key}.pkl")
    with open(quarantined, "rb") as handle:
        assert handle.read() == b"not a pickle"


def test_corrupt_counter_surfaces_in_stats_render(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert "corrupt" not in cache.stats.render()  # silent when clean
    cache.put("ab" * 32, [1])
    with open(cache._object_path("ab" * 32), "wb") as handle:
        handle.write(b"garbage")
    fresh = ResultCache(str(tmp_path))
    fresh.get("ab" * 32)
    assert "corrupt=1" in fresh.stats.render()


def test_truncated_object_is_quarantined_too(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = "0d" * 32
    cache.put(key, list(range(100)))
    path = cache._object_path(key)
    with open(path, "rb") as handle:
        head = handle.read(10)  # a torn write: valid prefix, no tail
    with open(path, "wb") as handle:
        handle.write(head)
    fresh = ResultCache(str(tmp_path))
    assert fresh.get(key, None) is None
    assert fresh.stats.corrupt == 1


def test_store_leaves_no_temp_debris(tmp_path):
    cache = ResultCache(str(tmp_path))
    for i in range(5):
        cache.put(f"{i:02d}" + "a" * 62, list(range(i)))
    leftovers = [
        name
        for _dir, _subdirs, files in os.walk(tmp_path)
        for name in files
        if name.endswith(".tmp")
    ]
    assert leftovers == []


def _summary(wall):
    return {"count": 1, "total": wall, "min": wall, "max": wall,
            "last": wall}


def test_unit_timings_persist_and_merge(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.save_unit_timings({
        "fig7/ObjectStore/SmartMemory@1.0": _summary(12.5),
    })
    cache.save_unit_timings({
        "fig7/ObjectStore/SmartMemory@1.0": _summary(10.0),
        "fig7/SQL/SmartMemory@1.0": _summary(11.0),
    })
    timings = ResultCache(str(tmp_path)).load_unit_timings()
    merged = timings["fig7/ObjectStore/SmartMemory@1.0"]
    # Counts/totals accumulate, min/max widen, last takes the fresher
    # observation — the value longest-first dispatch reads.
    assert merged["count"] == 2
    assert merged["total"] == 22.5
    assert merged["min"] == 10.0
    assert merged["max"] == 12.5
    assert merged["last"] == 10.0
    assert timings["fig7/SQL/SmartMemory@1.0"]["last"] == 11.0


def test_unit_timings_corrupt_file_is_empty(tmp_path):
    cache = ResultCache(str(tmp_path))
    os.makedirs(tmp_path, exist_ok=True)
    with open(cache._timings_path, "w", encoding="utf-8") as handle:
        handle.write("{broken")
    assert cache.load_unit_timings() == {}


# -- driver integration ------------------------------------------------------


SCALE = 0.05  # tiny but non-degenerate durations


def _digests(runs):
    return {run.name: experiment_digest(run.result) for run in runs}


def test_serial_cold_then_warm_is_all_hit_and_row_identical(tmp_path):
    cold_cache = ResultCache(str(tmp_path))
    cold = reproduce_all(only=["fig6-left"], scale=SCALE, cache=cold_cache)
    assert cold_cache.stats.misses > 0
    assert cold_cache.stats.stores == cold_cache.stats.misses
    warm_cache = ResultCache(str(tmp_path))
    warm = reproduce_all(only=["fig6-left"], scale=SCALE, cache=warm_cache)
    assert warm_cache.stats.misses == 0
    assert warm_cache.stats.stores == 0
    assert warm_cache.stats.hits == cold_cache.stats.stores
    assert _digests(cold) == _digests(warm)
    assert cold[0].result.rows == warm[0].result.rows
    # warm wall is the sum of *executed* unit walls: zero units ran
    assert warm[0].wall_seconds == 0.0


def test_cached_rows_match_uncached_rows(tmp_path):
    uncached = reproduce_all(only=["table1", "fig6-middle"], scale=SCALE)
    cached = reproduce_all(
        only=["table1", "fig6-middle"], scale=SCALE,
        cache=ResultCache(str(tmp_path)),
    )
    assert _digests(uncached) == _digests(cached)


def test_parallel_warm_pass_skips_the_pool(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path))
    cold = reproduce_all(
        only=["fig6-right"], scale=SCALE, parallel=True, workers=2,
        cache=cache,
    )
    # A fully-warm parallel pass must never touch the pool at all.
    def poisoned_pool(workers):
        raise AssertionError("warm pass requested a worker pool")

    monkeypatch.setattr(driver, "shared_pool", poisoned_pool)
    warm_cache = ResultCache(str(tmp_path))
    warm = reproduce_all(
        only=["fig6-right"], scale=SCALE, parallel=True, workers=2,
        cache=warm_cache,
    )
    assert warm_cache.stats.misses == 0
    assert _digests(cold) == _digests(warm)


def test_parallel_cold_pass_stores_and_matches_serial(tmp_path):
    # 0.1: large enough for fig2's Synthetic workload to finish a batch
    serial = reproduce_all(only=["fig2"], scale=0.1)
    cache = ResultCache(str(tmp_path))
    parallel = reproduce_all(
        only=["fig2"], scale=0.1, parallel=True, workers=2, cache=cache
    )
    assert cache.stats.stores > 0
    assert _digests(serial) == _digests(parallel)


def test_artifact_granularity_caches_whole_artifacts(tmp_path):
    cache = ResultCache(str(tmp_path))
    cold = reproduce_all(
        only=["table1", "table2"], scale=SCALE, parallel=True, workers=2,
        granularity="artifact", cache=cache,
    )
    warm_cache = ResultCache(str(tmp_path))
    warm = reproduce_all(
        only=["table1", "table2"], scale=SCALE, parallel=True, workers=2,
        granularity="artifact", cache=warm_cache,
    )
    assert warm_cache.stats.misses == 0
    assert _digests(cold) == _digests(warm)


def test_code_salt_change_invalidates(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path))
    reproduce_all(only=["table1"], scale=SCALE, cache=cache)
    monkeypatch.setattr("repro.cache.keys._code_salt_cache", "f" * 64)
    stale = ResultCache(str(tmp_path))
    reproduce_all(only=["table1"], scale=SCALE, cache=stale)
    assert stale.stats.misses > 0  # old entries no longer addressable


def test_scale_is_part_of_the_key(tmp_path):
    cache = ResultCache(str(tmp_path))
    reproduce_all(only=["table1"], scale=SCALE, cache=cache)
    other = ResultCache(str(tmp_path))
    reproduce_all(only=["table1"], scale=SCALE * 2, cache=other)
    assert other.stats.misses > 0


def test_executed_walls_recorded_and_persisted(tmp_path):
    cache = ResultCache(str(tmp_path))
    reproduce_all(only=["fig6-left"], scale=SCALE, cache=cache)
    timings = cache.load_unit_timings()
    assert timings, "executed unit timings should persist with the cache"
    for key, summary in timings.items():
        assert key.startswith("fig6-left/")
        assert summary["count"] >= 1
        assert summary["last"] >= 0.0
        assert summary["min"] <= summary["last"] <= summary["max"]


def test_dispatch_costs_prefer_recorded_walls():
    payloads = [("fig7", "a", 1.0), ("fig7", "b", 1.0)]
    units = {"fig7": [("fig7", "a"), ("fig7", "b")]}
    try:
        driver._unit_timings.observe(
            driver._wall_key("fig7", "a", 1.0), 9.0
        )
        costs = driver._dispatch_costs(payloads, units, 1.0)
        assert costs[("fig7", "a")] == 9.0
        # the unmeasured unit gets the calibrated estimate, comparable
        # in magnitude to the measured wall (same heuristic => same cost)
        assert costs[("fig7", "b")] == pytest.approx(9.0)
    finally:
        driver._unit_timings.clear()


def test_pickled_objects_live_under_fanout_dirs(tmp_path):
    cache = ResultCache(str(tmp_path))
    reproduce_all(only=["table1"], scale=SCALE, cache=cache)
    objects_root = tmp_path / "objects"
    stored = list(objects_root.rglob("*.pkl"))
    assert stored
    for path in stored:
        assert len(path.parent.name) == 2  # two-hex fan-out
        with open(path, "rb") as handle:
            pickle.load(handle)  # every object is readable


def test_atomic_writes_under_multi_process_contention(tmp_path):
    """Two real processes hammer one key: readers never see garbage.

    ``put`` is tmp-file + ``os.replace``, so a concurrent ``get`` must
    observe either some writer's complete payload or a miss — never a
    torn object (which would show up as ``stats.corrupt``).
    """
    import subprocess
    import sys

    root = str(tmp_path)
    script = (
        "import sys\n"
        "from repro.cache import ResultCache\n"
        "root, tag = sys.argv[1], sys.argv[2]\n"
        "cache = ResultCache(root)\n"
        "for i in range(200):\n"
        "    cache.put('contended-key', {'tag': tag, 'i': i,\n"
        "                                'blob': b'x' * 4096})\n"
        "    got = cache.get('contended-key')\n"
        "    assert got is not None and got['blob'] == b'x' * 4096\n"
        "assert cache.stats.corrupt == 0, cache.stats\n"
    )
    env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, root, tag], env=env
        )
        for tag in ("alpha", "beta")
    ]
    for proc in procs:
        assert proc.wait(timeout=120) == 0
    # The surviving object is one writer's complete payload.
    final = ResultCache(root)
    payload = final.get("contended-key")
    assert payload["tag"] in ("alpha", "beta")
    assert payload["blob"] == b"x" * 4096
    assert final.stats.corrupt == 0


# -- quarantine bound --------------------------------------------------------


def test_quarantine_dir_is_bounded_to_keep_newest(tmp_path):
    keys = [f"{i:02x}" * 32 for i in range(5)]
    cache = ResultCache(str(tmp_path), quarantine_keep=3)
    for key in keys:
        cache.put(key, [1])
        with open(cache._object_path(key), "wb") as handle:
            handle.write(b"garbage")
    fresh = ResultCache(str(tmp_path), quarantine_keep=3)
    for key in keys:
        assert fresh.get(key) is None  # every object corrupt → miss
    assert fresh.stats.corrupt == 5
    pkls = [
        name for name in os.listdir(fresh.quarantine_dir)
        if name.endswith(".pkl")
    ]
    assert len(pkls) == 3  # oldest two evicted
    assert fresh.stats.pruned == 2
    assert "pruned=2" in fresh.stats.render()


def test_quarantine_prune_spares_the_units_log(tmp_path):
    """``units.json`` (the QuarantineLog ledger) shares the quarantine
    directory and must never be collected by the object bound."""
    cache = ResultCache(str(tmp_path), quarantine_keep=1)
    os.makedirs(cache.quarantine_dir, exist_ok=True)
    ledger = os.path.join(cache.quarantine_dir, "units.json")
    with open(ledger, "w", encoding="utf-8") as handle:
        handle.write("[]")
    keys = [f"{i:02x}" * 32 for i in range(3)]
    for key in keys:
        cache.put(key, [1])
        with open(cache._object_path(key), "wb") as handle:
            handle.write(b"garbage")
    fresh = ResultCache(str(tmp_path), quarantine_keep=1)
    for key in keys:
        fresh.get(key)
    assert os.path.exists(ledger)  # the ledger survived
    pkls = [
        name for name in os.listdir(fresh.quarantine_dir)
        if name.endswith(".pkl")
    ]
    assert len(pkls) == 1
    assert fresh.stats.pruned == 2


def test_negative_quarantine_keep_disables_pruning(tmp_path):
    keys = [f"{i:02x}" * 32 for i in range(4)]
    cache = ResultCache(str(tmp_path), quarantine_keep=-1)
    for key in keys:
        cache.put(key, [1])
        with open(cache._object_path(key), "wb") as handle:
            handle.write(b"garbage")
    fresh = ResultCache(str(tmp_path), quarantine_keep=-1)
    for key in keys:
        fresh.get(key)
    pkls = [
        name for name in os.listdir(fresh.quarantine_dir)
        if name.endswith(".pkl")
    ]
    assert len(pkls) == 4
    assert fresh.stats.pruned == 0
    assert "pruned" not in fresh.stats.render()
