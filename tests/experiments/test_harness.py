"""Experiment-harness tests at reduced scale (fast smoke coverage).

Full-scale reproduction numbers live in the benchmarks; these tests pin
the harness mechanics — row structure, normalization direction, and the
coarse paper-shape relations that hold even at small scale.
"""

import pytest

from repro.experiments import (
    ExperimentResult,
    fig2_invalid_data,
    fig4_delayed_predictions,
    fig6_broken_model,
    fig8_memory_safeguards,
    table1_taxonomy,
    table2_learning_agents,
)


def test_experiment_result_rendering():
    result = ExperimentResult(
        name="x", title="demo", columns=["a", "b"]
    )
    result.add_row(a=1, b=2.5)
    result.notes.append("hello")
    text = result.render()
    assert "demo" in text
    assert "2.500" in text
    assert "note: hello" in text


def test_tables_have_expected_shapes():
    t1 = table1_taxonomy()
    assert len(t1.rows) == 6
    t2 = table2_learning_agents()
    assert len(t2.rows) == 6


def test_fig2_small_scale_validation_beats_no_validation():
    # Short runs are noisy (one batch of learning); allow slack and pin
    # the full-strength relation in the fig2 benchmark instead.
    result = fig2_invalid_data(seconds=300, bad_fractions=(0.0, 0.2))
    cells = {
        (row["bad_fraction"], row["validation"]): row for row in result.rows
    }
    assert (
        cells[(0.2, "on")]["norm_perf"]
        >= cells[(0.2, "off")]["norm_perf"] - 0.05
    )


def test_fig4_small_scale_blocking_wastes_power():
    result = fig4_delayed_predictions(seconds=250)
    cells = {row["actuator"]: row for row in result.rows}
    assert (
        cells["blocking"]["power_increase_pct"]
        > cells["non-blocking"]["power_increase_pct"]
    )


def test_fig6_middle_small_scale_safeguards_help():
    result = fig6_broken_model(seconds=120)
    cells = {
        (row["workload"], row["safeguards"]): row for row in result.rows
    }
    for workload in ("image-dnn", "moses"):
        assert (
            cells[(workload, "off")]["p99_increase_pct"]
            > cells[(workload, "on")]["p99_increase_pct"]
        )


def test_fig8_small_scale_all_safeguards_best():
    result = fig8_memory_safeguards(seconds=470, n_regions=128)
    cells = {row["safeguards"]: row for row in result.rows}
    assert (
        cells["all"]["slo_attainment"] >= cells["none"]["slo_attainment"]
    )
