"""Sub-artifact sharding: sharded passes are row-identical to serial.

The work-unit contract (DESIGN.md §7) promises that decomposing an
artifact into ``(artifact, series)`` units changes wall-clock only.
These tests pin that: the parallel series-granular driver must emit the
same rows as a serial pass — including for fig7, whose reduction
normalizes each workload against its static-300ms sibling unit — and
the golden pinned artifacts must keep their seed digests through the
sharded path.
"""

import pytest

from repro.experiments.common import experiment_digest
from repro.experiments.driver import (
    ARTIFACT_SPECS,
    ARTIFACTS,
    SERIES_SPECS,
    _resolve,
    artifact_units,
    reproduce_all,
)
from repro.perf.baselines import (
    GOLDEN_EXPERIMENT_DIGESTS,
    GOLDEN_EXPERIMENT_SCALE,
)


def test_every_artifact_yields_work_units():
    """Series keys resolve without simulating, and are unique."""
    for name in ARTIFACTS:
        units = artifact_units(name, scale=1.0)
        assert len(units) >= 1
        keys = [series for _name, series in units]
        assert len(set(keys)) == len(keys)
        if name in SERIES_SPECS:
            assert len(units) > 1, f"{name} decomposed to a single unit"
            assert None not in keys


def test_series_spec_paths_resolve():
    for name, (series_path, unit_path, assemble_path) in SERIES_SPECS.items():
        assert name in ARTIFACT_SPECS
        for path in (series_path, unit_path, assemble_path):
            assert callable(_resolve(path))


def test_decomposition_shrinks_the_straggler():
    """fig7 (the full-pass tail) must decompose below its total cost."""
    units = artifact_units("fig7", scale=1.0)
    assert len(units) == 9  # 3 workloads x 3 policies


def _rows(runs):
    return [(run.name, run.result.columns, run.result.rows) for run in runs]


def test_sharded_golden_artifacts_keep_seed_digests():
    """Sub-artifact parallel pass reproduces the pinned seed digests."""
    runs = reproduce_all(
        parallel=True,
        workers=2,
        only=list(GOLDEN_EXPERIMENT_DIGESTS),
        scale=GOLDEN_EXPERIMENT_SCALE,
        granularity="series",
    )
    got = {run.name: experiment_digest(run.result) for run in runs}
    assert got == GOLDEN_EXPERIMENT_DIGESTS


def test_fig7_sharded_equals_serial():
    """The cross-unit reduction (per-workload static-300ms baseline)
    survives sharding: parallel rows == serial rows, bit for bit."""
    serial = reproduce_all(only=["fig7"], scale=0.25)
    parallel = reproduce_all(
        parallel=True, workers=3, only=["fig7"], scale=0.25,
        granularity="series",
    )
    assert _rows(serial) == _rows(parallel)


def test_fig2_sharded_equals_serial():
    """The shared-reference normalization (clean guarded run) survives
    sharding."""
    serial = reproduce_all(only=["fig2"], scale=0.1)
    parallel = reproduce_all(
        parallel=True, workers=4, only=["fig2"], scale=0.1,
        granularity="series",
    )
    assert _rows(serial) == _rows(parallel)


def test_artifact_granularity_still_matches_serial():
    """The pre-sharding parallel path remains available as the bench
    baseline and still reproduces serial rows."""
    only = ["table1", "table2"]
    serial = reproduce_all(only=only, scale=0.2)
    parallel = reproduce_all(
        parallel=True, workers=2, only=only, scale=0.2,
        granularity="artifact",
    )
    assert _rows(serial) == _rows(parallel)


def test_unknown_granularity_rejected():
    with pytest.raises(ValueError):
        reproduce_all(parallel=True, granularity="node")


def test_streaming_stays_canonical_under_series_sharding():
    only = ["table1", "fig2", "fig4"]
    seen = []
    runs = reproduce_all(
        parallel=True, workers=3, only=only, scale=0.1,
        granularity="series",
        on_result=lambda run: seen.append(run.name),
    )
    assert [run.name for run in runs] == only
    assert seen == only
