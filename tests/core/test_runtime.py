"""Runtime behavior tests: epochs, queueing, decoupling, failure isolation.

Each §3.2 failure condition has at least one dedicated test here; the
safeguard-specific behaviors are in ``test_safeguard_behavior.py``.
"""

import pytest

from repro.core import EventKind, SafeguardPolicy, Schedule, SolRuntime, run_agent
from repro.node.faults import DelayInjector
from repro.sim import Kernel
from repro.sim.units import MS, SEC

from tests.core.helpers import RecordingActuator, ScriptedModel


def make_schedule(**kwargs):
    defaults = dict(
        data_collect_interval_us=100 * MS,
        min_data_per_epoch=10,
        max_data_per_epoch=100,
        max_epoch_time_us=1 * SEC,
        assess_model_interval_epochs=1,
        max_actuation_delay_us=5 * SEC,
        assess_actuator_interval_us=1 * SEC,
    )
    defaults.update(kwargs)
    return Schedule(**defaults)


def start_agent(kernel, model, actuator, schedule=None, **kwargs):
    return run_agent(
        kernel, model, actuator, schedule or make_schedule(), **kwargs
    )


def test_learning_epoch_cadence_and_prediction_flow():
    kernel = Kernel()
    model = ScriptedModel(kernel, predictor=lambda: 7.0)
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=10 * SEC)
    # 10 datapoints at 100 ms each -> one completed epoch per second
    # (the 11th epoch has just started at t=10 s).
    assert model.updates == 10
    assert runtime.epochs == 11
    # every epoch's prediction was acted on
    values = [value for _t, value, _d in actuator.actions]
    assert values.count(7.0) == 10
    assert runtime.stats()["default_predictions"] == 0


def test_commit_only_validated_data():
    kernel = Kernel()
    model = ScriptedModel(
        kernel,
        data_source=lambda: float(len(model.collected)),
        validator=lambda value: value % 2 == 0,  # odd datapoints invalid
    )
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=2 * SEC)
    committed_values = [value for _t, value in model.committed]
    assert all(value % 2 == 0 for value in committed_values)
    assert runtime.log.count(EventKind.VALIDATION_FAILED) > 0


def test_epoch_short_circuits_to_default_when_data_all_invalid():
    kernel = Kernel()
    model = ScriptedModel(
        kernel, validator=lambda _v: False, default=lambda: -1.0
    )
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=5 * SEC)
    assert model.updates == 0  # never enough valid data to train
    assert runtime.log.count(EventKind.EPOCH_SHORT_CIRCUIT) >= 3
    # actuator still received (default) predictions
    assert actuator.actions
    assert all(is_default for _t, _v, is_default in actuator.actions)


def test_validation_disabled_commits_bad_data():
    kernel = Kernel()
    model = ScriptedModel(kernel, validator=lambda _v: False)
    actuator = RecordingActuator(kernel)
    runtime = start_agent(
        kernel, model, actuator,
        policy=SafeguardPolicy(validate_data=False),
    )
    kernel.run(until=2 * SEC)
    assert len(model.committed) > 0
    assert runtime.log.count(EventKind.VALIDATION_FAILED) == 0


def test_model_predict_none_short_circuits_to_default():
    kernel = Kernel()
    model = ScriptedModel(kernel, predictor=lambda: None, default=lambda: 9.0)
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=3 * SEC)
    assert all(value == 9.0 for _t, value, _d in actuator.actions)
    assert (
        runtime.log.last(EventKind.EPOCH_SHORT_CIRCUIT).details["reason"]
        == "no_model_prediction"
    )


def test_no_predictions_at_all_leads_to_timeout_actions():
    kernel = Kernel()
    model = ScriptedModel(
        kernel, validator=lambda _v: False, default=lambda: None
    )
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=16 * SEC)
    # take_action(None) every max_actuation_delay (5 s) -> 3 times in 16 s
    none_actions = [t for t, value, _d in actuator.actions if value is None]
    assert len(none_actions) == 3
    assert runtime.stats()["actuation_timeouts"] == 3


def test_actuator_acts_immediately_when_prediction_arrives():
    kernel = Kernel()
    model = ScriptedModel(kernel)
    actuator = RecordingActuator(kernel)
    start_agent(kernel, model, actuator)
    kernel.run(until=1100 * MS)
    # first epoch ends at 1 s; action should land at 1 s, not at 5 s timeout
    assert actuator.actions
    assert actuator.actions[0][0] == 1 * SEC


def test_queue_capacity_one_supersedes_stale_predictions():
    kernel = Kernel()
    model = ScriptedModel(kernel)
    actuator = RecordingActuator(kernel)
    # Delay the actuator so several epochs elapse before it consumes.
    delays = DelayInjector()
    delays.add_window(at_us=0, duration_us=4 * SEC)
    runtime = start_agent(
        kernel, model, actuator, actuator_delays=delays,
    )
    kernel.run(until=4500 * MS)
    # epochs at 1,2,3,4 s; actuator woke at 4 s and must see the freshest.
    assert runtime.queue.dropped >= 2
    assert len(actuator.actions) >= 1


def test_expired_prediction_becomes_none_action():
    kernel = Kernel()
    model = ScriptedModel(kernel, ttl_us=500 * MS)  # expires quickly
    actuator = RecordingActuator(kernel)
    delays = DelayInjector()
    delays.add_window(at_us=0, duration_us=2 * SEC)  # actuator stalls to 2 s
    runtime = start_agent(kernel, model, actuator, actuator_delays=delays)
    kernel.run(until=2100 * MS)
    # prediction produced at 1 s expired at 1.5 s; actuator woke at 2 s
    assert runtime.log.count(EventKind.PREDICTION_EXPIRED) == 1
    assert actuator.actions[0][1] is None


def test_expiry_disabled_acts_on_stale_prediction():
    kernel = Kernel()
    model = ScriptedModel(kernel, ttl_us=500 * MS, predictor=lambda: 3.0)
    actuator = RecordingActuator(kernel)
    delays = DelayInjector()
    delays.add_window(at_us=0, duration_us=2 * SEC)
    runtime = start_agent(
        kernel, model, actuator,
        policy=SafeguardPolicy(enforce_expiry=False),
        actuator_delays=delays,
    )
    kernel.run(until=2100 * MS)
    assert runtime.log.count(EventKind.PREDICTION_EXPIRED) == 0
    assert actuator.actions[0][1] == 3.0


def test_blocking_actuator_never_times_out():
    kernel = Kernel()
    model = ScriptedModel(
        kernel, validator=lambda _v: False, default=lambda: None
    )
    actuator = RecordingActuator(kernel)
    runtime = start_agent(
        kernel, model, actuator,
        policy=SafeguardPolicy(non_blocking_actuator=False),
    )
    kernel.run(until=60 * SEC)
    assert actuator.actions == []  # blocked forever: no prediction, no action
    assert runtime.stats()["actuation_timeouts"] == 0


def test_model_throttling_stalls_predictions_but_not_safe_actions():
    """The decoupling argument: a starved Model cannot starve the Actuator."""
    kernel = Kernel()
    model = ScriptedModel(kernel)
    actuator = RecordingActuator(kernel)
    delays = DelayInjector()
    delays.add_window(at_us=1500 * MS, duration_us=30 * SEC)
    runtime = start_agent(kernel, model, actuator, model_delays=delays)
    kernel.run(until=35 * SEC)
    assert runtime.log.count(EventKind.SCHEDULING_DELAY) == 1
    # During the 30 s stall the actuator kept acting via timeouts.
    stall_actions = [
        t for t, value, _d in actuator.actions
        if 2 * SEC < t < 31 * SEC and value is None
    ]
    assert len(stall_actions) >= 5


def test_model_crash_is_isolated_and_recovers():
    kernel = Kernel()
    crashes = {"left": 3}

    def flaky_source():
        if crashes["left"] > 0:
            crashes["left"] -= 1
            raise IOError("telemetry driver fault")
        return 1.0

    model = ScriptedModel(kernel, data_source=flaky_source,
                          default=lambda: 0.5)
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=10 * SEC)
    assert runtime.stats()["model_crashes"] == 3
    # after the flakiness, normal predictions resume
    assert any(value == 42.0 for _t, value, _d in actuator.actions)
    assert runtime.running


def test_actuator_crash_does_not_kill_the_loop():
    kernel = Kernel()
    model = ScriptedModel(kernel)
    actuator = RecordingActuator(
        kernel, action_error=RuntimeError("actuation bug")
    )
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=5 * SEC)
    assert runtime.log.count(EventKind.ACTUATOR_CRASH) >= 4
    assert runtime.running


def test_terminate_kills_loops_and_cleans_up():
    kernel = Kernel()
    model = ScriptedModel(kernel)
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=2500 * MS)
    runtime.terminate()
    assert actuator.cleanups == 1
    assert not runtime.running
    actions_at_kill = len(actuator.actions)
    kernel.run(until=20 * SEC)
    assert len(actuator.actions) == actions_at_kill  # nothing after death
    # idempotent: SREs may retry cleanup
    runtime.terminate()
    assert actuator.cleanups == 2


def test_double_start_rejected():
    kernel = Kernel()
    runtime = SolRuntime(
        kernel,
        ScriptedModel(kernel),
        RecordingActuator(kernel),
        make_schedule(),
    )
    runtime.start()
    with pytest.raises(RuntimeError):
        runtime.start()


def test_stats_keys_complete():
    kernel = Kernel()
    runtime = start_agent(
        kernel, ScriptedModel(kernel), RecordingActuator(kernel)
    )
    kernel.run(until=3 * SEC)
    stats = runtime.stats()
    for key in [
        "epochs", "predictions_sent", "default_predictions",
        "validation_failures", "interceptions", "short_circuits",
        "actuations", "actuation_timeouts", "expired_predictions",
        "mitigations", "model_crashes", "model_safeguard_triggers",
        "actuator_safeguard_triggers",
    ]:
        assert key in stats
