"""Tests for the SRE-facing agent manager."""

import pytest

from repro.core import Schedule, run_agent
from repro.core.manager import AgentManager
from repro.sim import Kernel
from repro.sim.units import MS, SEC

from tests.core.helpers import RecordingActuator, ScriptedModel


def make_agent(kernel, name, performance=None):
    schedule = Schedule(
        data_collect_interval_us=100 * MS,
        min_data_per_epoch=5,
        max_epoch_time_us=1 * SEC,
        max_actuation_delay_us=2 * SEC,
        assess_actuator_interval_us=1 * SEC,
    )
    actuator = RecordingActuator(kernel, performance=performance)
    runtime = run_agent(
        kernel, ScriptedModel(kernel), actuator, schedule, name=name
    )
    return runtime, actuator


def test_register_and_report():
    kernel = Kernel()
    manager = AgentManager(kernel)
    runtime_a, _ = make_agent(kernel, "overclock")
    runtime_b, _ = make_agent(kernel, "harvest")
    manager.register(runtime_a)
    manager.register(runtime_b)
    kernel.run(until=5 * SEC)
    report = manager.health_report()
    assert [h.name for h in report] == ["harvest", "overclock"]
    assert all(h.running and h.healthy for h in report)
    assert all(h.epochs > 0 for h in report)


def test_duplicate_names_rejected():
    kernel = Kernel()
    manager = AgentManager(kernel)
    runtime, _ = make_agent(kernel, "dup")
    manager.register(runtime)
    with pytest.raises(ValueError):
        manager.register(runtime)


def test_unhealthy_agent_visible_in_report():
    kernel = Kernel()
    manager = AgentManager(kernel)
    runtime, _ = make_agent(kernel, "bad", performance=lambda: False)
    manager.register(runtime)
    kernel.run(until=5 * SEC)
    health = manager.health("bad")
    assert health.actuator_safeguard_active
    assert not health.healthy
    assert health.mitigations > 0


def test_terminate_one_agent_leaves_others_running():
    kernel = Kernel()
    manager = AgentManager(kernel)
    runtime_a, actuator_a = make_agent(kernel, "a")
    runtime_b, actuator_b = make_agent(kernel, "b")
    manager.register(runtime_a)
    manager.register(runtime_b)
    kernel.run(until=3 * SEC)
    manager.terminate("a")
    assert actuator_a.cleanups == 1
    assert not runtime_a.running
    assert runtime_b.running
    kernel.run(until=6 * SEC)
    assert runtime_b.stats()["epochs"] > 3


def test_terminate_all_is_isolated_per_agent():
    kernel = Kernel()
    manager = AgentManager(kernel)
    runtime_good, actuator_good = make_agent(kernel, "good")

    runtime_bad, actuator_bad = make_agent(kernel, "bad")
    original_cleanup = actuator_bad.clean_up

    def exploding_cleanup():
        original_cleanup()
        raise RuntimeError("cleanup bug")

    actuator_bad.clean_up = exploding_cleanup
    manager.register(runtime_bad)
    manager.register(runtime_good)
    kernel.run(until=2 * SEC)
    terminated = manager.terminate_all()
    # the bad agent's cleanup raised, but the sweep finished
    assert terminated == 1
    assert actuator_good.cleanups == 1
    assert not runtime_good.running


def test_render_report_lists_agents_and_state():
    kernel = Kernel()
    manager = AgentManager(kernel)
    runtime, _ = make_agent(kernel, "smart-overclock")
    manager.register(runtime)
    kernel.run(until=2 * SEC)
    text = manager.render_report()
    assert "smart-overclock" in text
    assert "running" in text
    manager.terminate("smart-overclock")
    assert "stopped" in manager.render_report()
