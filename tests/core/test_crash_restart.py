"""Agent crash-restart: loops die mid-flight, a supervisor revives them."""

import pytest

from repro.core import EventKind, SolRuntime
from repro.sim import Kernel
from repro.sim.units import SEC

from tests.core.helpers import RecordingActuator, ScriptedModel
from tests.core.test_runtime import make_schedule, start_agent


def test_crash_stops_all_loops_without_cleanup():
    kernel = Kernel()
    model = ScriptedModel(kernel)
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=3 * SEC)
    runtime.crash()
    assert not runtime.running
    # A crash is not the SRE path: clean_up must NOT have run.
    assert actuator.cleanups == 0
    actions_at_crash = len(actuator.actions)
    kernel.run(until=6 * SEC)
    # Nothing acts while the agent is down.
    assert len(actuator.actions) == actions_at_crash
    assert runtime.stats()["agent_kills"] == 1
    assert runtime.stats()["agent_restarts"] == 0


def test_restart_revives_the_loops():
    kernel = Kernel()
    model = ScriptedModel(kernel, predictor=lambda: 7.0)
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, model, actuator)
    kernel.run(until=3 * SEC)
    runtime.crash()
    kernel.run(until=5 * SEC)
    downtime_actions = len(actuator.actions)
    runtime.restart()
    assert runtime.running
    kernel.run(until=10 * SEC)
    assert len(actuator.actions) > downtime_actions
    # Learned state survived: the model keeps predicting its value.
    assert any(value == 7.0 for _t, value, _d in actuator.actions[downtime_actions:])
    stats = runtime.stats()
    assert stats["agent_kills"] == 1
    assert stats["agent_restarts"] == 1


def test_restart_requires_dead_loops():
    kernel = Kernel()
    runtime = start_agent(
        kernel, ScriptedModel(kernel), RecordingActuator(kernel)
    )
    with pytest.raises(RuntimeError):
        runtime.restart()


def test_restart_requires_a_started_agent():
    kernel = Kernel()
    runtime = SolRuntime(
        kernel, ScriptedModel(kernel), RecordingActuator(kernel),
        make_schedule(),
    )
    with pytest.raises(RuntimeError):
        runtime.restart()


def test_crash_then_terminate_still_cleans_up():
    kernel = Kernel()
    actuator = RecordingActuator(kernel)
    runtime = start_agent(kernel, ScriptedModel(kernel), actuator)
    kernel.run(until=2 * SEC)
    runtime.crash()
    runtime.terminate()
    assert actuator.cleanups == 1


def test_first_prediction_after_restart_is_not_swallowed():
    """The stale queue waiter of a killed Actuator must be deregistered.

    Without the SimQueue.get kill-path cleanup, the restarted Actuator
    registers a second waiter behind the dead one and the Model's first
    prediction after the restart vanishes into the dead event.
    """
    kernel = Kernel()
    model = ScriptedModel(kernel, predictor=lambda: 9.0)
    actuator = RecordingActuator(kernel)
    # A long actuation timeout keeps the Actuator parked in queue.get
    # at crash time — the regression scenario.
    runtime = start_agent(
        kernel, model, actuator,
        schedule=make_schedule(max_actuation_delay_us=60 * SEC),
    )
    kernel.run(until=1_600_000)  # mid-epoch: actuator is waiting
    runtime.crash()
    runtime.restart()
    kernel.run(until=10 * SEC)
    model_actions = [
        value for _t, value, is_default in actuator.actions
        if is_default is False
    ]
    # Every post-restart epoch's prediction reached the actuator; in
    # particular the first one was not swallowed by the dead waiter.
    assert len(model_actions) >= 8
