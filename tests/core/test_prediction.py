"""Tests for Prediction expiry semantics."""

import pytest

from repro.core.prediction import Prediction
from repro.sim import Kernel
from repro.sim.units import SEC


def test_fresh_prediction_carries_current_time():
    kernel = Kernel()
    kernel.run(until=3 * SEC)
    pred = Prediction.fresh(kernel, value=1.0, ttl_us=2 * SEC)
    assert pred.produced_at_us == 3 * SEC
    assert pred.expires_at_us == 5 * SEC
    assert pred.ttl_us == 2 * SEC


def test_expiry_boundary_is_inclusive():
    kernel = Kernel()
    pred = Prediction.fresh(kernel, value=1.0, ttl_us=1 * SEC)
    assert not pred.is_expired(1 * SEC)  # exactly at expiry: still valid
    assert pred.is_expired(1 * SEC + 1)


def test_default_flag_propagates():
    kernel = Kernel()
    pred = Prediction.fresh(kernel, value=0.0, ttl_us=1, is_default=True)
    assert pred.is_default


def test_invalid_expiry_rejected():
    with pytest.raises(ValueError):
        Prediction(value=1, produced_at_us=10, expires_at_us=5)
    kernel = Kernel()
    with pytest.raises(ValueError):
        Prediction.fresh(kernel, value=1, ttl_us=-1)


def test_zero_ttl_prediction_expires_immediately_after_now():
    kernel = Kernel()
    pred = Prediction.fresh(kernel, value=1, ttl_us=0)
    assert not pred.is_expired(kernel.now)
    assert pred.is_expired(kernel.now + 1)
