"""Tests for the runtime event log."""

from repro.core.events import EventKind, EventLog
from repro.sim import Kernel
from repro.sim.units import SEC


def test_record_stamps_current_time():
    kernel = Kernel()
    log = EventLog(kernel, agent="a")
    kernel.run(until=2 * SEC)
    event = log.record(EventKind.ACTUATION, has_prediction=True)
    assert event.time_us == 2 * SEC
    assert event.agent == "a"
    assert event.details == {"has_prediction": True}


def test_queries():
    kernel = Kernel()
    log = EventLog(kernel, agent="a")
    log.record(EventKind.ACTUATION, n=1)
    log.record(EventKind.MITIGATION)
    log.record(EventKind.ACTUATION, n=2)
    assert log.count(EventKind.ACTUATION) == 2
    assert [e.details["n"] for e in log.of_kind(EventKind.ACTUATION)] == [1, 2]
    assert log.last(EventKind.ACTUATION).details["n"] == 2
    assert log.last(EventKind.CLEANUP) is None
    assert len(log) == 3


def test_summary_counts_by_kind():
    log = EventLog(Kernel(), agent="a")
    log.record(EventKind.ACTUATION)
    log.record(EventKind.ACTUATION)
    log.record(EventKind.CLEANUP)
    assert log.summary() == {"actuation": 2, "cleanup": 1}


def test_str_rendering_mentions_kind():
    log = EventLog(Kernel(), agent="agent-x")
    event = log.record(EventKind.SAFEGUARD_TRIGGERED, safeguard="model")
    assert "safeguard_triggered" in str(event)
    assert "agent-x" in str(event)


def _advance(kernel, until):
    kernel.run(until=until)


def test_first_fallback_tracks_default_and_none_actions():
    kernel = Kernel()
    for mode in ("full", "counts"):
        log = EventLog(kernel, agent="a", mode=mode)
        log.record(EventKind.ACTUATION, has_prediction=True, is_default=False)
        assert log.first_fallback_us() is None
        log.record(EventKind.ACTUATION, has_prediction=True, is_default=True)
        assert log.first_fallback_us() == kernel.now
        assert log.action_histogram() == {"model": 1, "default": 1, "none": 0}


def test_fallback_watch_ignores_warmup_fallbacks():
    """Time-to-fallback anchors at the watch point, not the first ever.

    Regression test: a node whose agent fell back during warmup (before
    the fault onset) must still report its first *post-onset* fallback.
    """
    kernel = Kernel()
    log = EventLog(kernel, agent="a", mode="counts")
    log.watch_fallback_from(5 * SEC)
    # Warmup fallback at t=0: recorded globally, ignored by the watch.
    log.record(EventKind.ACTUATION, has_prediction=False)
    assert log.first_fallback_us() == 0
    assert log.first_watched_fallback_us() is None
    _advance(kernel, 6 * SEC)
    log.record(EventKind.ACTUATION, has_prediction=True, is_default=True)
    assert log.first_watched_fallback_us() == 6 * SEC
    # Later fallbacks don't move the anchor.
    _advance(kernel, 7 * SEC)
    log.record(EventKind.ACTUATION, has_prediction=False)
    assert log.first_watched_fallback_us() == 6 * SEC


def test_safeguard_first_trigger_since_skips_warmup_windows():
    from repro.core.safeguards import SafeguardState

    kernel = Kernel()
    guard = SafeguardState(kernel, "g")
    guard.trigger()  # warmup trip at t=0
    guard.clear()
    assert guard.first_triggered_at_us == 0
    assert guard.first_triggered_at_us_since(1) is None
    kernel.run(until=4 * SEC)
    guard.trigger()  # post-onset trip, still open
    assert guard.first_triggered_at_us_since(1) == 4 * SEC
    assert guard.first_triggered_at_us_since(5 * SEC) is None
    guard.clear()
    assert guard.first_triggered_at_us_since(1) == 4 * SEC
