"""Tests for the runtime event log."""

from repro.core.events import EventKind, EventLog
from repro.sim import Kernel
from repro.sim.units import SEC


def test_record_stamps_current_time():
    kernel = Kernel()
    log = EventLog(kernel, agent="a")
    kernel.run(until=2 * SEC)
    event = log.record(EventKind.ACTUATION, has_prediction=True)
    assert event.time_us == 2 * SEC
    assert event.agent == "a"
    assert event.details == {"has_prediction": True}


def test_queries():
    kernel = Kernel()
    log = EventLog(kernel, agent="a")
    log.record(EventKind.ACTUATION, n=1)
    log.record(EventKind.MITIGATION)
    log.record(EventKind.ACTUATION, n=2)
    assert log.count(EventKind.ACTUATION) == 2
    assert [e.details["n"] for e in log.of_kind(EventKind.ACTUATION)] == [1, 2]
    assert log.last(EventKind.ACTUATION).details["n"] == 2
    assert log.last(EventKind.CLEANUP) is None
    assert len(log) == 3


def test_summary_counts_by_kind():
    log = EventLog(Kernel(), agent="a")
    log.record(EventKind.ACTUATION)
    log.record(EventKind.ACTUATION)
    log.record(EventKind.CLEANUP)
    assert log.summary() == {"actuation": 2, "cleanup": 1}


def test_str_rendering_mentions_kind():
    log = EventLog(Kernel(), agent="agent-x")
    event = log.record(EventKind.SAFEGUARD_TRIGGERED, safeguard="model")
    assert "safeguard_triggered" in str(event)
    assert "agent-x" in str(event)
