"""EventLog counts mode: identical aggregates, no per-event retention."""

import pytest

from repro.core.events import EventKind, EventLog, RING_SIZE
from repro.sim import Kernel


def _drive(log: EventLog) -> None:
    log.record(EventKind.EPOCH_START, epoch=1)
    log.record(EventKind.PREDICTION_SENT, is_default=False, expires_at_us=5)
    log.record(EventKind.PREDICTION_SENT, is_default=True, expires_at_us=9)
    log.record(EventKind.ACTUATION, has_prediction=True, is_default=False)
    log.record(EventKind.ACTUATION, has_prediction=True, is_default=True)
    log.record(EventKind.ACTUATION, has_prediction=False, is_default=None)
    log.record(EventKind.ACTUATION_TIMEOUT)


def test_counts_mode_matches_full_mode_aggregates():
    kernel = Kernel()
    full = EventLog(kernel, agent="a", mode="full")
    counts = EventLog(kernel, agent="a", mode="counts")
    _drive(full)
    _drive(counts)
    for kind in EventKind:
        assert counts.count(kind) == full.count(kind)
    assert counts.summary() == full.summary()
    assert counts.action_histogram() == full.action_histogram()
    assert (
        counts.default_predictions_sent() == full.default_predictions_sent()
    )
    assert len(counts) == len(full) == 7


def test_full_mode_action_histogram_values():
    log = EventLog(Kernel(), agent="a")
    _drive(log)
    assert log.action_histogram() == {"model": 1, "default": 1, "none": 1}
    assert log.default_predictions_sent() == 1


def test_counts_mode_rejects_per_event_queries():
    log = EventLog(Kernel(), agent="a", mode="counts")
    _drive(log)
    with pytest.raises(RuntimeError):
        log.of_kind(EventKind.ACTUATION)
    with pytest.raises(RuntimeError):
        list(log)


def test_counts_mode_ring_buffer_keeps_recent_tail():
    log = EventLog(Kernel(), agent="a", mode="counts")
    for i in range(RING_SIZE + 10):
        log.record(EventKind.DATA_COLLECTED, n=i)
    recent = log.recent()
    assert len(recent) == RING_SIZE
    assert recent[-1].details["n"] == RING_SIZE + 9
    # Ring entries materialize lazily, so compare by value, not identity.
    assert log.last(EventKind.DATA_COLLECTED) == recent[-1]
    assert log.count(EventKind.DATA_COLLECTED) == RING_SIZE + 10


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        EventLog(Kernel(), agent="a", mode="sometimes")
