"""Safeguard semantics: interception, watchdog halt/mitigate, recovery."""

import pytest

from repro.core import EventKind, SafeguardPolicy, Schedule, run_agent
from repro.sim import Kernel
from repro.sim.units import MS, SEC

from tests.core.helpers import RecordingActuator, ScriptedModel


def make_schedule(**kwargs):
    defaults = dict(
        data_collect_interval_us=100 * MS,
        min_data_per_epoch=10,
        max_epoch_time_us=1 * SEC,
        assess_model_interval_epochs=1,
        max_actuation_delay_us=5 * SEC,
        assess_actuator_interval_us=1 * SEC,
    )
    defaults.update(kwargs)
    return Schedule(**defaults)


def test_failing_model_assessment_intercepts_predictions():
    kernel = Kernel()
    healthy = {"value": True}
    model = ScriptedModel(
        kernel,
        predictor=lambda: 100.0,
        default=lambda: 0.0,
        assessor=lambda: healthy["value"],
    )
    actuator = RecordingActuator(kernel)
    runtime = run_agent(kernel, model, actuator, make_schedule())
    kernel.run(until=3500 * MS)  # three healthy epochs
    healthy["value"] = False
    kernel.run(until=7500 * MS)  # four unhealthy epochs
    values = [value for _t, value, _d in actuator.actions]
    assert values[:3] == [100.0, 100.0, 100.0]
    assert set(values[3:]) == {0.0}
    assert runtime.log.count(EventKind.PREDICTION_INTERCEPTED) >= 3
    # model keeps learning during interception -> chance to recover
    assert model.updates >= 7


def test_model_recovery_clears_interception():
    kernel = Kernel()
    healthy = {"value": False}
    model = ScriptedModel(
        kernel, predictor=lambda: 5.0, default=lambda: 0.0,
        assessor=lambda: healthy["value"],
    )
    actuator = RecordingActuator(kernel)
    runtime = run_agent(kernel, model, actuator, make_schedule())
    kernel.run(until=3500 * MS)
    healthy["value"] = True
    kernel.run(until=6500 * MS)
    assert runtime.model_safeguard.trigger_count == 1
    assert not runtime.model_safeguard.active
    cleared = runtime.log.last(EventKind.SAFEGUARD_CLEARED)
    assert cleared is not None and cleared.details["safeguard"] == "model"
    # after recovery the real model value flows again
    assert actuator.actions[-1][1] == 5.0


def test_assessment_runs_every_k_epochs():
    kernel = Kernel()
    model = ScriptedModel(kernel)
    actuator = RecordingActuator(kernel)
    run_agent(
        kernel, model, actuator,
        make_schedule(assess_model_interval_epochs=3),
    )
    kernel.run(until=9500 * MS)  # 9 epochs
    assert model.assessments == 3


def test_assess_model_disabled_never_assesses():
    kernel = Kernel()
    model = ScriptedModel(kernel, assessor=lambda: False)
    actuator = RecordingActuator(kernel)
    runtime = run_agent(
        kernel, model, actuator, make_schedule(),
        policy=SafeguardPolicy(assess_model=False),
    )
    kernel.run(until=5 * SEC)
    assert model.assessments == 0
    assert runtime.log.count(EventKind.PREDICTION_INTERCEPTED) == 0
    # the (bad) model predictions flow straight to the actuator
    assert actuator.actions[0][1] == 42.0


def test_watchdog_halts_actuator_and_mitigates_until_recovery():
    kernel = Kernel()
    unsafe_window = (3 * SEC, 6 * SEC)

    def performance():
        return not (unsafe_window[0] <= kernel.now < unsafe_window[1])

    model = ScriptedModel(kernel)
    actuator = RecordingActuator(kernel, performance=performance)
    runtime = run_agent(kernel, model, actuator, make_schedule())
    kernel.run(until=10 * SEC)
    # mitigate called on every failing assessment (3,4,5 s)
    assert len(actuator.mitigations) == 3
    # no actions while halted
    halted_actions = [
        t for t, _v, _d in actuator.actions
        if unsafe_window[0] < t < unsafe_window[1]
    ]
    assert halted_actions == []
    # actions resume after clear
    assert any(t >= 6 * SEC for t, _v, _d in actuator.actions)
    assert runtime.actuator_safeguard.trigger_count == 1
    assert runtime.actuator_safeguard.windows == [(3 * SEC, 6 * SEC)]


def test_watchdog_disabled_never_mitigates():
    kernel = Kernel()
    model = ScriptedModel(kernel)
    actuator = RecordingActuator(kernel, performance=lambda: False)
    runtime = run_agent(
        kernel, model, actuator, make_schedule(),
        policy=SafeguardPolicy(assess_actuator=False),
    )
    kernel.run(until=5 * SEC)
    assert actuator.mitigations == []
    assert runtime.actuator_safeguard.trigger_count == 0
    assert actuator.actions  # actions keep flowing unguarded


def test_watchdog_crash_counts_as_unhealthy():
    kernel = Kernel()

    def broken_assess():
        raise RuntimeError("watchdog bug")

    model = ScriptedModel(kernel)
    actuator = RecordingActuator(kernel, performance=broken_assess)
    runtime = run_agent(kernel, model, actuator, make_schedule())
    kernel.run(until=3500 * MS)
    # a crashing assessment must fail safe: trigger + mitigate
    assert runtime.actuator_safeguard.active
    assert len(actuator.mitigations) >= 1


def test_safeguard_duration_accounting():
    kernel = Kernel()
    model = ScriptedModel(kernel)
    actuator = RecordingActuator(
        kernel, performance=lambda: kernel.now >= 4 * SEC
    )
    runtime = run_agent(kernel, model, actuator, make_schedule())
    kernel.run(until=10 * SEC)
    # triggered at 1 s (first assessment), cleared at 4 s
    assert runtime.actuator_safeguard.active_duration_us() == 3 * SEC


def test_policy_presets():
    assert SafeguardPolicy.all_enabled().validate_data
    none = SafeguardPolicy.none_enabled()
    assert not none.validate_data
    assert not none.assess_model
    assert not none.assess_actuator
    assert not none.enforce_expiry
