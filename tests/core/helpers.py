"""Scripted Model/Actuator doubles for exercising the SOL runtime."""

from typing import Callable, List, Optional, Tuple

from repro.core.interfaces import Actuator, Model
from repro.core.prediction import Prediction
from repro.sim.kernel import Kernel
from repro.sim.units import SEC


class ScriptedModel(Model):
    """A model whose every behavior is programmable from the test."""

    def __init__(
        self,
        kernel: Kernel,
        data_source: Optional[Callable[[], float]] = None,
        validator: Optional[Callable[[float], bool]] = None,
        predictor: Optional[Callable[[], Optional[float]]] = None,
        default: Optional[Callable[[], Optional[float]]] = None,
        assessor: Optional[Callable[[], bool]] = None,
        ttl_us: int = 2 * SEC,
        default_ttl_us: Optional[int] = None,
    ) -> None:
        self.kernel = kernel
        self.data_source = data_source or (lambda: 1.0)
        self.validator = validator or (lambda _data: True)
        self.predictor = predictor or (lambda: 42.0)
        self.default = default if default is not None else (lambda: 0.0)
        self.assessor = assessor or (lambda: True)
        self.ttl_us = ttl_us
        self.default_ttl_us = default_ttl_us or ttl_us

        self.collected: List[float] = []
        self.committed: List[Tuple[int, float]] = []
        self.updates = 0
        self.assessments = 0

    def collect_data(self) -> float:
        value = self.data_source()
        self.collected.append(value)
        return value

    def validate_data(self, data: float) -> bool:
        return self.validator(data)

    def commit_data(self, time_us: int, data: float) -> None:
        self.committed.append((time_us, data))

    def update_model(self) -> None:
        self.updates += 1

    def model_predict(self) -> Optional[Prediction]:
        value = self.predictor()
        if value is None:
            return None
        return Prediction.fresh(self.kernel, value, ttl_us=self.ttl_us)

    def default_predict(self) -> Optional[Prediction]:
        value = self.default()
        if value is None:
            return None
        return Prediction.fresh(
            self.kernel, value, ttl_us=self.default_ttl_us, is_default=True
        )

    def assess_model(self) -> bool:
        self.assessments += 1
        return self.assessor()


class RecordingActuator(Actuator):
    """Records every runtime callback with its simulated timestamp."""

    def __init__(
        self,
        kernel: Kernel,
        performance: Optional[Callable[[], bool]] = None,
        action_error: Optional[Exception] = None,
    ) -> None:
        self.kernel = kernel
        self.performance = performance or (lambda: True)
        self.action_error = action_error
        self.actions: List[Tuple[int, Optional[float], Optional[bool]]] = []
        self.mitigations: List[int] = []
        self.cleanups = 0

    def take_action(self, prediction: Optional[Prediction]) -> None:
        if self.action_error is not None:
            raise self.action_error
        if prediction is None:
            self.actions.append((self.kernel.now, None, None))
        else:
            self.actions.append(
                (self.kernel.now, prediction.value, prediction.is_default)
            )

    def assess_performance(self) -> bool:
        return self.performance()

    def mitigate(self) -> None:
        self.mitigations.append(self.kernel.now)

    def clean_up(self) -> None:
        self.cleanups += 1
