"""Tests for Schedule validation."""

import pytest

from repro.core.schedule import Schedule
from repro.sim.units import MS, SEC


def test_defaults_are_valid():
    schedule = Schedule()
    assert schedule.data_collect_interval_us == 100 * MS


def test_positive_fields_enforced():
    with pytest.raises(ValueError):
        Schedule(data_collect_interval_us=0)
    with pytest.raises(ValueError):
        Schedule(max_actuation_delay_us=-1)
    with pytest.raises(ValueError):
        Schedule(min_data_per_epoch=0)


def test_min_cannot_exceed_max_data():
    with pytest.raises(ValueError):
        Schedule(min_data_per_epoch=10, max_data_per_epoch=5)


def test_collect_interval_must_fit_in_epoch():
    with pytest.raises(ValueError):
        Schedule(data_collect_interval_us=2 * SEC, max_epoch_time_us=1 * SEC)


def test_frozen():
    schedule = Schedule()
    with pytest.raises(AttributeError):
        schedule.min_data_per_epoch = 5  # type: ignore[misc]
