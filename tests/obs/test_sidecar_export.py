"""Sidecar + exporter tests: segments, crash tolerance, Chrome JSON,
Prometheus text."""

import json

from repro.obs.export import chrome_trace, render_prometheus
from repro.obs.sidecar import (
    TelemetrySidecar,
    read_metrics,
    read_trace,
    segments,
    trace_path,
)
from repro.obs.spans import Tracer


def _traced_segment(directory, run_id, names):
    sidecar = TelemetrySidecar(str(directory))
    sidecar.open_segment(run_id=run_id)
    tracer = Tracer(sink=sidecar.write)
    for name in names:
        with tracer.span(name):
            pass
    sidecar.write_metrics({"pool": {"dispatched": len(names)}})
    sidecar.close()
    return sidecar


def test_segments_accumulate_across_reopens(tmp_path):
    _traced_segment(tmp_path, "run-1", ["a", "b"])
    _traced_segment(tmp_path, "run-1", ["c"])
    records = read_trace(trace_path(str(tmp_path)))
    heads = segments(records)
    assert [h["seq"] for h in heads] == [0, 1]
    assert all(h["run_id"] == "run-1" for h in heads)
    spans = [r for r in records if r["t"] == "span"]
    assert [s["name"] for s in spans] == ["a", "b", "c"]
    metrics = read_metrics(str(tmp_path / "metrics.json"))
    assert [s["seq"] for s in metrics["segments"]] == [0, 1]


def test_torn_and_garbage_lines_are_skipped(tmp_path):
    _traced_segment(tmp_path, "run-1", ["a"])
    path = trace_path(str(tmp_path))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"t": "span", "name": "torn", "ts": 1, "dur"')
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\ngarbage line\n")
    records = read_trace(path)
    names = [r.get("name") for r in records if r.get("t") == "span"]
    assert names == ["a"]
    # A reader on a missing file degrades to empty, never raises.
    assert read_trace(str(tmp_path / "nope.jsonl")) == []
    assert read_metrics(str(tmp_path / "nope.json")) == {}


def test_chrome_export_round_trips_and_orders_spans(tmp_path):
    _traced_segment(tmp_path, "run-1", ["a", "b"])
    _traced_segment(tmp_path, "run-1", ["c"])
    records = read_trace(trace_path(str(tmp_path)))
    trace = chrome_trace(records)
    # Round-trips through JSON.
    parsed = json.loads(json.dumps(trace))
    assert parsed["displayTimeUnit"] == "ms"
    events = parsed["traceEvents"]
    assert events, "expected trace events"
    for event in events:
        assert event["ph"] in ("X", "b", "e", "i", "M")
    # Per (pid, tid), complete-span timestamps are monotonic.
    by_thread = {}
    for event in events:
        if event["ph"] == "X":
            key = (event["pid"], event["tid"])
            by_thread.setdefault(key, []).append(event["ts"])
    for stamps in by_thread.values():
        assert stamps == sorted(stamps)


def test_chrome_export_async_spans_pair_up():
    records = [
        {"t": "segment", "seq": 0, "pid": 1, "unix_ns": 10 ** 18,
         "mono_ns": 0},
        {"t": "span", "name": "unit-a", "cat": "unit", "pid": 1,
         "tid": 7, "thread": "MainThread", "id": 3, "parent": 1,
         "ts": 1000, "dur": 5000, "mode": "async", "args": {}},
    ]
    events = chrome_trace(records)["traceEvents"]
    begins = [e for e in events if e["ph"] == "b"]
    ends = [e for e in events if e["ph"] == "e"]
    assert len(begins) == len(ends) == 1
    assert begins[0]["id"] == ends[0]["id"] == "1:3"
    assert ends[0]["ts"] - begins[0]["ts"] == 5.0  # 5000 ns = 5 us


def test_prometheus_rendering_flattens_and_types():
    text = render_prometheus({
        "queue": {"depth": 3, "accepting": True},
        "jobs": {"submitted": 7, "by_status": {"done": 2}},
        "events": {"dropped_total": 0},
        "name": "ignored-string",
    })
    lines = text.strip().splitlines()
    assert "repro_queue_depth 3" in lines
    assert "repro_queue_accepting 1" in lines
    assert "repro_jobs_submitted 7" in lines
    assert "repro_jobs_by_status_done 2" in lines
    assert "# TYPE repro_events_dropped_total counter" in lines
    assert "# TYPE repro_queue_depth gauge" in lines
    assert not any("ignored-string" in line for line in lines)
    assert text.endswith("\n")
