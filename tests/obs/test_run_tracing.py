"""End-to-end observability: tracing never moves a digest, sidecars
merge across process segments, and the CLI exports/inspects them."""

import json
import os

import pytest

from repro.cli import main
from repro.experiments.driver import FleetDriver
from repro.fleet.config import FleetConfig
from repro.journal.cli import timing_rows
from repro.journal.pipelines import open_fleet_journal
from repro.journal.registry import list_runs
from repro.obs import run_tracing, spans as obs
from repro.obs.sidecar import read_metrics, read_trace, segments, trace_path

FLEET = FleetConfig(n_nodes=4, agent="overclock", seed=7, duration_s=10)


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    obs.deactivate()
    yield
    obs.deactivate()


def _run_fleet(root, traced, workers=2):
    with open_fleet_journal(root, FLEET, workers) as journal:
        with run_tracing(journal, enabled_=traced, kind="fleet"):
            aggregate = FleetDriver(
                FLEET, workers=workers, journal=journal
            ).run()
        directory = journal.directory
    return aggregate.digest(), directory


def test_tracing_on_vs_off_digests_bit_identical(tmp_path):
    traced_digest, traced_dir = _run_fleet(str(tmp_path / "a"), True)
    plain_digest, plain_dir = _run_fleet(str(tmp_path / "b"), False)
    assert traced_digest == plain_digest
    assert os.path.exists(trace_path(traced_dir))
    assert not os.path.exists(trace_path(plain_dir))
    # The traced run captured the whole hierarchy out-of-band.
    records = read_trace(trace_path(traced_dir))
    names = {r.get("name") for r in records if r.get("t") == "span"}
    assert "run" in names
    assert "pipeline" in names
    assert "attempt" in names  # worker-shipped over the event pipe
    cats = {r.get("cat") for r in records if r.get("t") == "span"}
    assert {"run", "fleet", "unit", "pool"} <= cats
    # Worker attempts ran in other processes; their records merged in.
    pids = {r.get("pid") for r in records if r.get("t") == "span"}
    assert len(pids) > 1
    metrics = read_metrics(os.path.join(traced_dir, "metrics.json"))
    assert metrics["segments"][0]["metrics"]["pool"]["submitted"] >= 4


def test_resumed_run_appends_second_segment(tmp_path):
    root = str(tmp_path)
    # Segment 0: trace a first (complete) pass; segment 1: resume-style
    # second session against the same journal directory.
    digest, directory = _run_fleet(root, True, workers=1)
    with open_fleet_journal(
        root, FLEET, 1, resume=True
    ) as journal:
        with run_tracing(journal, kind="fleet", resumed=True):
            again = FleetDriver(FLEET, workers=1, journal=journal).run()
    assert again.digest() == digest
    records = read_trace(trace_path(directory))
    heads = segments(records)
    assert len(heads) == 2
    assert [h["seq"] for h in heads] == [0, 1]
    metrics = read_metrics(os.path.join(directory, "metrics.json"))
    assert len(metrics["segments"]) == 2


def test_trace_export_cli_round_trips(tmp_path, capsys):
    root = str(tmp_path)
    _run_fleet(root, True)
    (info,) = list_runs(root)
    out_path = str(tmp_path / "trace.json")
    assert main(
        ["trace", "export", info.run_id, "--cache-dir", root,
         "--output", out_path]
    ) == 0
    with open(out_path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    assert trace["traceEvents"]
    phases = {event["ph"] for event in trace["traceEvents"]}
    assert phases <= {"X", "b", "e", "i", "M"}
    # 'latest' resolves to the same run.
    assert main(
        ["trace", "export", "latest", "--cache-dir", root,
         "--output", out_path]
    ) == 0


def test_trace_export_errors_cleanly(tmp_path, capsys):
    root = str(tmp_path)
    assert main(
        ["trace", "export", "nope", "--cache-dir", root]
    ) == 2
    # A run executed with tracing off has no sidecar.
    _run_fleet(root, False)
    (info,) = list_runs(root)
    assert main(
        ["trace", "export", info.run_id, "--cache-dir", root]
    ) == 2
    err = capsys.readouterr().err
    assert "no telemetry sidecar" in err


def test_runs_show_timing_table(tmp_path, capsys):
    root = str(tmp_path)
    _run_fleet(root, True)
    (info,) = list_runs(root)
    assert main(
        ["runs", "show", info.run_id, "--timing", "--cache-dir", root]
    ) == 0
    out = capsys.readouterr().out
    assert "per-unit timing (journal-reconstructed):" in out
    assert "wall_s" in out
    assert "executed" in out
    assert "telemetry: trace.jsonl" in out


def test_timing_rows_sources_and_outlier_flag():
    records = [
        {"kind": "UNIT_DISPATCHED", "unit": "slow", "attempt": 0},
        {"kind": "UNIT_DISPATCHED", "unit": "slow", "attempt": 1},
        {"kind": "UNIT_DONE", "unit": "slow", "wall": 10.0,
         "executed": True},
        {"kind": "UNIT_DISPATCHED", "unit": "fast1", "attempt": 0},
        {"kind": "UNIT_DONE", "unit": "fast1", "wall": 1.0,
         "executed": True},
        {"kind": "UNIT_DISPATCHED", "unit": "fast2", "attempt": 0},
        {"kind": "UNIT_DONE", "unit": "fast2", "wall": 1.2,
         "executed": True},
        {"kind": "UNIT_DONE", "unit": "hit", "wall": 0.0,
         "executed": False},
        {"kind": "UNIT_DISPATCHED", "unit": "poison", "attempt": 0},
        {"kind": "UNIT_QUARANTINED", "unit": "poison", "fault": "error"},
        {"kind": "UNIT_DISPATCHED", "unit": "unfinished", "attempt": 0},
        {"kind": "RUN_SEALED", "digest": "d"},
    ]
    rows = {row["unit"]: row for row in timing_rows(records)}
    assert rows["slow"]["attempts"] == 2
    assert rows["slow"]["outlier"] is True  # 10.0 > 3 x median(1.2)
    assert rows["fast1"]["outlier"] is False
    assert rows["hit"]["source"] == "cached"
    assert rows["poison"]["source"] == "quarantined"
    assert rows["unfinished"]["source"] == "pending"
    # Slowest-first ordering, wall-less rows at the bottom.
    ordered = [row["unit"] for row in timing_rows(records)]
    assert ordered[:3] == ["slow", "fast2", "fast1"]
    assert set(ordered[3:]) == {"hit", "poison", "unfinished"}


def test_no_trace_flag_on_cli_pipeline(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(
        ["fleet", "--nodes", "2", "--seconds", "5", "--no-trace"]
    ) == 0
    (info,) = list_runs(str(tmp_path))
    assert not os.path.exists(trace_path(info.directory))
