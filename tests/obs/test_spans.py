"""Tracer unit tests: nesting, threads, async spans, ambient API."""

import threading

import pytest

from repro.obs import spans as obs
from repro.obs.spans import Tracer


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Every test starts and ends with tracing off."""
    obs.deactivate()
    yield
    obs.deactivate()


def _spans(records):
    return [r for r in records if r["t"] == "span"]


def test_nested_spans_parent_correctly():
    tracer = Tracer()
    with tracer.span("outer", cat="run"):
        with tracer.span("inner", cat="cache"):
            pass
    records = _spans(tracer.drain())
    # Records emit at end: inner closes first.
    inner, outer = records
    assert inner["name"] == "inner"
    assert inner["parent"] == outer["id"]
    assert outer["parent"] is None
    assert inner["ts"] >= outer["ts"]
    assert inner["dur"] >= 0 and outer["dur"] >= 0
    assert outer["dur"] >= inner["dur"]


def test_exception_is_recorded_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    (record,) = _spans(tracer.drain())
    assert record["args"]["error"] == "ValueError"


def test_threads_get_independent_stacks():
    tracer = Tracer()
    seen = {}

    def worker():
        with tracer.span("worker-span") as sp:
            seen["parent"] = sp.parent_id

    with tracer.span("main-span"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    # The worker thread's stack is empty: no cross-thread parenting.
    assert seen["parent"] is None
    records = _spans(tracer.drain())
    tids = {r["name"]: r["tid"] for r in records}
    assert tids["worker-span"] != tids["main-span"]


def test_floating_span_parents_but_does_not_become_parent():
    tracer = Tracer()
    root = tracer.begin("root")
    floating = tracer.begin("unit-a", cat="unit", attach=False)
    with tracer.span("sibling"):
        pass
    tracer.end(floating)
    tracer.end(root)
    by_name = {r["name"]: r for r in _spans(tracer.drain())}
    assert by_name["unit-a"]["mode"] == "async"
    assert by_name["unit-a"]["parent"] == by_name["root"]["id"]
    # The floating span never went on the stack: the sibling parents
    # under root, not under unit-a.
    assert by_name["sibling"]["parent"] == by_name["root"]["id"]


def test_ambient_span_is_noop_when_disabled():
    with obs.span("ignored") as sp:
        assert sp is None
    obs.instant("also-ignored")  # must not raise
    obs.absorb([{"t": "span"}])  # must not raise
    assert not obs.enabled()


def test_ambient_span_records_when_active():
    tracer = obs.activate(Tracer())
    with obs.span("visible", cat="pool", unit="u1") as sp:
        assert sp is not None
        sp.args["outcome"] = "done"
    obs.instant("tick", cat="pool", unit="u1")
    obs.deactivate()
    records = tracer.drain()
    span_record = next(r for r in records if r["t"] == "span")
    assert span_record["args"] == {"unit": "u1", "outcome": "done"}
    instant = next(r for r in records if r["t"] == "instant")
    assert instant["name"] == "tick"
    assert not obs.enabled()


def test_absorb_feeds_foreign_records_through():
    tracer = obs.activate(Tracer())
    shipped = [{"t": "span", "name": "attempt", "pid": 12345}]
    obs.absorb(shipped)
    assert tracer.drain() == shipped


def test_sink_mode_writes_through_without_buffering():
    lines = []
    tracer = Tracer(sink=lines.append)
    with tracer.span("s"):
        pass
    assert len(lines) == 1
    assert tracer.drain() == []


def test_timestamps_are_monotonic_per_thread():
    tracer = Tracer()
    for index in range(5):
        with tracer.span(f"s{index}"):
            pass
    records = _spans(tracer.drain())
    starts = [r["ts"] for r in records]
    assert starts == sorted(starts)
