"""Metrics registry tests: instruments, snapshot, int-compat views."""

import threading

from repro.obs.metrics import (
    HistogramFamily,
    MetricsRegistry,
    counter_property,
)


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    registry.histogram("h").observe(1.0)
    registry.histogram("h").observe(3.0)
    snap = registry.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"] == 2.5
    assert snap["histograms"]["h"] == {
        "count": 2, "total": 4.0, "min": 1.0, "max": 3.0, "last": 3.0,
    }


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.histogram("x") is registry.histogram("x")


def test_provider_folds_into_snapshot_and_errors_are_contained():
    registry = MetricsRegistry()
    registry.register_provider("extra", lambda: {"depth": 3})
    registry.register_provider(
        "broken", lambda: (_ for _ in ()).throw(RuntimeError("boom"))
    )
    snap = registry.snapshot()
    assert snap["extra"] == {"depth": 3}
    assert "RuntimeError" in snap["broken"]["error"]


def test_counter_property_is_int_compatible():
    class Holder:
        hits = counter_property("cache.hits")

        def __init__(self):
            self.registry = MetricsRegistry()

    holder = Holder()
    holder.hits += 1
    holder.hits += 2
    assert holder.hits == 3
    assert holder.registry.counter("cache.hits").value == 3
    holder.hits = 0
    assert holder.hits == 0


def test_concurrent_increments_do_not_lose_counts():
    registry = MetricsRegistry()
    counter = registry.counter("n")

    def bump():
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=bump) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 4000


def test_histogram_family_last_and_absorb_merge():
    family = HistogramFamily()
    family.observe("u1", 2.0)
    assert "u1" in family
    assert family.last("u1") == 2.0
    assert family.last("missing") is None
    # Persisted summaries merge, but session-measured last wins.
    family.absorb({
        "u1": {"count": 3, "total": 30.0, "min": 5.0, "max": 15.0,
               "last": 10.0},
        "u2": {"count": 1, "total": 7.0, "min": 7.0, "max": 7.0,
               "last": 7.0},
        "junk": "not-a-dict",
    })
    assert family.last("u1") == 2.0
    assert family.last("u2") == 7.0
    export = family.export()
    assert export["u1"]["count"] == 4
    assert export["u1"]["min"] == 2.0
    assert export["u1"]["max"] == 15.0
    assert sorted(family.keys()) == ["u1", "u2"]
    assert family.export(["u2", "missing"]) == {"u2": export["u2"]}


def test_histogram_family_clear_resets():
    family = HistogramFamily()
    family.observe("u1", 1.0)
    family.clear()
    assert family.last("u1") is None
    assert family.export() == {}
