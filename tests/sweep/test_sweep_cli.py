"""The ``repro sweep`` command line, driven in-process."""

import os

import pytest

from repro.cli import main

SPEC = """
name = "cli-demo"
agents = ["overclock"]
scales = [2]
seeds = [0]
duration_s = 10
rack_size = 1

[[fault]]
kind = "bad_data"
intensities = [0.9]
start_s = 2
duration_s = 5
racks = [0]
"""


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "demo.toml"
    path.write_text(SPEC)
    return str(path)


def test_sweep_show_lists_cells_without_running(capsys, spec_path):
    assert main(["sweep", "show", spec_path]) == 0
    out = capsys.readouterr().out
    assert "campaign: cli-demo — 2 cells" in out
    assert "overclock/n2/x10s/seed0/baseline" in out
    assert "bad_data@0.9[2+5]r0" in out


def test_sweep_run_prints_scoreboard_and_digest(capsys, spec_path, tmp_path):
    cache_dir = str(tmp_path / "cache")
    assert main(
        ["sweep", "run", spec_path, "--cache-dir", cache_dir]
    ) == 0
    out = capsys.readouterr().out
    assert "campaign digest: " in out
    assert "[sweep: 2 cells, 2 executed, 0 from cache" in out
    assert "frontier: fault=bad_data[2+5]r0 agent=overclock" in out
    # Warm re-run through the same cache: zero executed, same digest.
    assert main(
        ["sweep", "run", spec_path, "--cache-dir", cache_dir]
    ) == 0
    warm = capsys.readouterr().out
    assert "[sweep: 2 cells, 0 executed, 2 from cache" in warm
    digest = [l for l in out.splitlines() if l.startswith("campaign digest")]
    assert digest == [
        l for l in warm.splitlines() if l.startswith("campaign digest")
    ]


def test_sweep_run_no_cache_recomputes(capsys, spec_path):
    assert main(["sweep", "run", spec_path, "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "2 executed" in out
    assert "[cache:" not in out


def test_sweep_list_scans_a_directory(capsys, tmp_path, spec_path):
    assert main(["sweep", "list", os.path.dirname(spec_path)]) == 0
    out = capsys.readouterr().out
    assert "cli-demo — 2 cells" in out
    (tmp_path / "broken.toml").write_text("name = \n")
    assert main(["sweep", "list", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "INVALID" in out and "cli-demo" in out


def test_sweep_list_empty_directory(capsys, tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["sweep", "list", str(empty)]) == 0
    assert "no campaign specs" in capsys.readouterr().out


def test_sweep_list_missing_directory_is_a_usage_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "list", str(tmp_path / "nope")])


def test_sweep_run_missing_spec_is_a_usage_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "run", str(tmp_path / "nope.toml")])


def test_sweep_run_invalid_spec_is_a_usage_error(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text('name = "x"\nagents = ["toaster"]\nscales = [2]\n')
    with pytest.raises(SystemExit):
        main(["sweep", "run", str(path)])


def test_committed_example_campaigns_expand():
    from repro.sweep import load_spec

    directory = os.path.join(os.path.dirname(__file__), "..", "..",
                             "examples", "campaigns")
    specs = sorted(
        name for name in os.listdir(directory) if name.endswith(".toml")
    )
    assert len(specs) >= 3
    for name in specs:
        spec = load_spec(os.path.join(directory, name))
        assert len(spec.expand()) >= 2
