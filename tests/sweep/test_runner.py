"""The campaign engine: determinism, incrementality, the sweep:: namespace.

The expensive guarantees (parallel == serial digest, warm re-run
executes zero cells) run on deliberately tiny overclock fleets so the
whole module stays in test-suite budget.
"""

import pytest

from repro.cache import ResultCache, sweep_unit_key
from repro.sweep import (
    CampaignSpec,
    FaultAxis,
    SafetyRecord,
    SweepRunner,
    run_unit,
)


def _spec(intensities=(0.9,), agents=("overclock",), seeds=(0,)):
    return CampaignSpec(
        name="t",
        agents=agents,
        scales=(2,),
        seeds=seeds,
        duration_s=15,
        rack_size=1,
        faults=(
            FaultAxis(
                kind="bad_data",
                intensities=intensities,
                start_s=3,
                duration_s=8,
                racks=(0,),
            ),
        ),
    )


def test_run_unit_is_pure_in_the_cell():
    unit = _spec().expand()[0]
    first, second = run_unit(unit), run_unit(unit)
    assert isinstance(first, SafetyRecord)
    assert first == second
    assert first.fleet_digest == second.fleet_digest


def test_parallel_and_serial_agree_bit_identically(tmp_path):
    spec = _spec(intensities=(0.5, 0.9))
    serial = SweepRunner(spec, workers=1).run()
    parallel = SweepRunner(spec, workers=3).run()
    assert serial.digest() == parallel.digest()
    assert [r.as_dict() for r in serial.records] == [
        r.as_dict() for r in parallel.records
    ]


def test_warm_rerun_executes_zero_cells(tmp_path):
    spec = _spec()
    cold_cache = ResultCache(str(tmp_path))
    cold = SweepRunner(spec, cache=cold_cache).run()
    assert cold.executed == len(cold.records)
    warm_cache = ResultCache(str(tmp_path))
    warm = SweepRunner(spec, cache=warm_cache).run()
    assert warm.executed == 0
    assert warm.from_cache == len(warm.records)
    assert warm_cache.stats.misses == 0 and warm_cache.stats.stores == 0
    assert warm.digest() == cold.digest()


def test_editing_one_axis_reruns_only_changed_cells(tmp_path):
    cache = ResultCache(str(tmp_path))
    SweepRunner(_spec(intensities=(0.9,)), cache=cache).run()
    grown = SweepRunner(
        _spec(intensities=(0.5, 0.9)), cache=ResultCache(str(tmp_path))
    ).run()
    # Baseline and the 0.9 cell load from cache; only the new 0.5 cell runs.
    assert grown.executed == 1
    assert grown.from_cache == 2


def test_cells_are_shared_across_campaign_names(tmp_path):
    cache = ResultCache(str(tmp_path))
    SweepRunner(_spec(), cache=cache).run()
    renamed = CampaignSpec(
        name="totally-different",
        agents=("overclock",),
        scales=(2,),
        seeds=(0,),
        duration_s=15,
        rack_size=1,
        faults=(
            FaultAxis(kind="bad_data", intensities=(0.9,), start_s=3,
                      duration_s=8, racks=(0,)),
        ),
    )
    warm = SweepRunner(renamed, cache=ResultCache(str(tmp_path))).run()
    assert warm.executed == 0


def test_sweep_keys_use_their_own_namespace():
    unit = _spec().expand()[0]
    key = sweep_unit_key(unit.cache_payload())
    assert key.startswith("sweep::")
    # Identical payload under a fixed salt is stable; any coordinate
    # change moves the address.
    fixed = sweep_unit_key(unit.cache_payload(), salt="s")
    assert fixed == sweep_unit_key(unit.cache_payload(), salt="s")
    other = dict(unit.cache_payload(), seed=1)
    assert sweep_unit_key(other, salt="s") != fixed


def test_runner_rejects_bad_worker_counts():
    with pytest.raises(ValueError):
        SweepRunner(_spec(), workers=0)


def test_baseline_cells_anchor_deltas_end_to_end():
    report = SweepRunner(_spec()).run()
    faulted = [r for r in report.records if r.fault_kind != "none"]
    assert len(faulted) == 1
    deltas = report.deltas(faulted[0])
    assert deltas is not None
    assert "qos_violation_delta" in deltas
    assert (
        report.frontier()[("bad_data[3+8]r0", "overclock")][0]["cells"] == 1
    )
