"""Safety records and the campaign report: deltas, frontier, digest."""

import pytest

from repro.sweep import CampaignReport, SafetyRecord


def _record(**overrides):
    defaults = dict(
        unit_id="overclock/n2/x20s/seed0/baseline",
        agent="overclock",
        n_nodes=2,
        seed=0,
        fault_kind="none",
        intensity=0.0,
        fault_start_s=0,
        fault_duration_s=0,
        racks=(),
        sim_seconds=20,
        slo_windows=8,
        slo_violations=0,
        safeguard_trips={"actuator": 0, "model": 0},
        action_histogram={"default": 0, "model": 10, "none": 2},
        agent_kills=0,
        agent_restarts=0,
        affected_nodes=0,
        engaged_nodes=0,
        time_to_fallback_s=None,
        fleet_digest="d" * 64,
    )
    defaults.update(overrides)
    return SafetyRecord(**defaults)


def _faulted(**overrides):
    defaults = dict(
        unit_id="overclock/n2/x20s/seed0/bad_data@0.9[5+10]r0",
        fault_kind="bad_data",
        intensity=0.9,
        fault_start_s=5,
        fault_duration_s=10,
        racks=(0,),
        slo_violations=2,
        safeguard_trips={"actuator": 1, "model": 3},
        action_histogram={"default": 6, "model": 4, "none": 2},
        affected_nodes=2,
        engaged_nodes=2,
        time_to_fallback_s=0.6,
    )
    defaults.update(overrides)
    return _record(**defaults)


def test_record_derived_properties():
    record = _faulted()
    assert record.qos_violation_rate == 2 / 8
    assert record.total_trips == 4
    assert record.fallback_share == (6 + 2) / 12
    empty = _record(slo_windows=0, action_histogram={})
    assert empty.qos_violation_rate == 0.0
    assert empty.fallback_share == 0.0


def test_report_is_order_independent():
    records = [_record(), _faulted()]
    forward = CampaignReport.build("c", records)
    backward = CampaignReport.build("c", list(reversed(records)))
    assert forward.digest() == backward.digest()
    assert [r.unit_id for r in forward.records] == [
        r.unit_id for r in backward.records
    ]


def test_report_digest_ignores_name_and_execution_counters():
    records = [_record(), _faulted()]
    a = CampaignReport.build("a", records, executed=2, wall_seconds=9.0)
    b = CampaignReport.build("b", records, from_cache=2)
    assert a.digest() == b.digest()


def test_report_digest_sees_every_result_bit():
    base = CampaignReport.build("c", [_record(), _faulted()])
    moved = CampaignReport.build(
        "c", [_record(), _faulted(time_to_fallback_s=0.6000001)]
    )
    assert base.digest() != moved.digest()


def test_report_rejects_duplicate_cells():
    with pytest.raises(ValueError, match="duplicate"):
        CampaignReport.build("c", [_record(), _record()])


def test_deltas_against_matching_baseline():
    report = CampaignReport.build("c", [_record(), _faulted()])
    faulted = next(r for r in report.records if r.fault_kind != "none")
    deltas = report.deltas(faulted)
    assert deltas["qos_violation_delta"] == pytest.approx(2 / 8)
    assert deltas["safeguard_trips_delta"] == 4
    assert deltas["fallback_share_delta"] == pytest.approx(
        8 / 12 - 2 / 12
    )
    assert deltas["action_histogram_delta"] == {
        "default": 6, "model": -6, "none": 0,
    }
    baseline = next(r for r in report.records if r.fault_kind == "none")
    assert report.deltas(baseline) is None


def test_deltas_none_when_baseline_cell_missing():
    report = CampaignReport.build("c", [_faulted()])
    assert report.deltas(report.records[0]) is None


def test_frontier_rows_sorted_by_intensity():
    report = CampaignReport.build(
        "c",
        [
            _record(),
            _faulted(),
            _faulted(
                unit_id="overclock/n2/x20s/seed0/bad_data@0.3[5+10]r0",
                intensity=0.3,
                slo_violations=1,
                time_to_fallback_s=1.2,
            ),
        ],
    )
    frontier = report.frontier()
    rows = frontier[("bad_data[5+10]r0", "overclock")]
    assert [row["intensity"] for row in rows] == [0.3, 0.9]
    assert rows[0]["qos_violation_rate"] == pytest.approx(1 / 8)
    assert rows[1]["qos_violation_delta"] == pytest.approx(2 / 8)
    assert rows[1]["engaged_nodes"] == 2
    assert rows[1]["affected_nodes"] == 2


def test_frontier_never_merges_same_kind_axes_with_different_windows():
    report = CampaignReport.build(
        "c",
        [
            _faulted(),
            _faulted(
                unit_id="overclock/n2/x20s/seed0/bad_data@0.9[12+4]r1",
                fault_start_s=12,
                fault_duration_s=4,
                racks=(1,),
            ),
        ],
    )
    frontier = report.frontier()
    assert set(frontier) == {
        ("bad_data[5+10]r0", "overclock"),
        ("bad_data[12+4]r1", "overclock"),
    }
    assert all(len(rows) == 1 for rows in frontier.values())


def test_render_contains_cells_frontier_and_digest():
    report = CampaignReport.build("demo", [_record(), _faulted()])
    text = report.render()
    assert "campaign: demo" in text
    assert "baseline" in text
    assert "frontier: fault=bad_data[5+10]r0 agent=overclock" in text
    assert f"campaign digest: {report.digest()}" in text
