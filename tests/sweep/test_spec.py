"""Campaign specs: validation, loaders, deterministic expansion."""

import pytest

from repro.sweep import CampaignSpec, FaultAxis, loads_toml
from repro.sweep.spec import _parse_minimal_toml

SMOKE_TOML = """
# a comment
name = "demo"            # trailing comment
agents = ["overclock", "harvest"]
scales = [2, 4]
seeds = [0, 1]
duration_s = 30
rack_size = 2

[[fault]]
kind = "bad_data"
intensities = [0.5, 0.9]
start_s = 5
duration_s = 10
racks = [0]

[[fault]]
kind = "crash_restart"
intensities = [1.0]
start_s = 5
duration_s = 10
racks = [0]
"""


def _spec(**overrides):
    defaults = dict(
        name="t",
        agents=("overclock",),
        scales=(2,),
        seeds=(0,),
        duration_s=30,
        rack_size=2,
        faults=(),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


# -- validation --------------------------------------------------------------


def test_spec_rejects_unknown_agent():
    with pytest.raises(ValueError, match="agent"):
        _spec(agents=("toaster",))


def test_spec_rejects_bad_scales_and_seeds():
    with pytest.raises(ValueError):
        _spec(scales=(0,))
    with pytest.raises(ValueError):
        _spec(scales=())
    with pytest.raises(ValueError):
        _spec(seeds=())


def test_spec_rejects_fault_window_past_duration():
    axis = FaultAxis(kind="bad_data", intensities=(0.5,), start_s=30,
                     duration_s=10)
    with pytest.raises(ValueError, match="starts at"):
        _spec(duration_s=30, faults=(axis,))


def test_spec_rejects_racks_outside_smallest_scale():
    axis = FaultAxis(kind="bad_data", intensities=(0.5,), start_s=5,
                     duration_s=10, racks=(3,))
    with pytest.raises(ValueError, match="racks"):
        _spec(scales=(2, 16), rack_size=2, faults=(axis,))


def test_fault_axis_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultAxis(kind="meteor", intensities=(0.5,))
    with pytest.raises(ValueError, match="intensities"):
        FaultAxis(kind="bad_data", intensities=())
    with pytest.raises(ValueError, match="baseline"):
        FaultAxis(kind="bad_data", intensities=(0.0,))
    with pytest.raises(ValueError):
        FaultAxis(kind="bad_data", intensities=(1.5,))


# -- expansion ---------------------------------------------------------------


def test_expand_emits_one_baseline_per_combination_plus_cells():
    spec = loads_toml(SMOKE_TOML)
    units = spec.expand()
    # 2 agents × 2 scales × 2 seeds × (1 baseline + 2 + 1 faulted cells)
    assert len(units) == 2 * 2 * 2 * 4
    baselines = [u for u in units if u.is_baseline]
    assert len(baselines) == 8
    assert len({u.unit_id() for u in units}) == len(units)


def test_expand_order_is_deterministic_and_canonical():
    spec = loads_toml(SMOKE_TOML)
    first = [u.unit_id() for u in spec.expand()]
    second = [u.unit_id() for u in spec.expand()]
    assert first == second
    assert first == sorted(
        first,
        key=lambda i: [u.sort_key() for u in spec.expand()
                       if u.unit_id() == i][0],
    )


# -- loaders -----------------------------------------------------------------


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown campaign keys"):
        CampaignSpec.from_dict(
            {"name": "x", "agents": ["overclock"], "scales": [2],
             "surprise": 1}
        )


def test_from_dict_rejects_unknown_fault_keys_and_missing_fields():
    base = {"name": "x", "agents": ["overclock"], "scales": [2]}
    with pytest.raises(ValueError, match="unknown fault keys"):
        CampaignSpec.from_dict(
            {**base, "fault": [{"kind": "bad_data", "intensities": [0.5],
                                "color": "red"}]}
        )
    with pytest.raises(ValueError, match="needs 'kind'"):
        CampaignSpec.from_dict({**base, "fault": [{"intensities": [0.5]}]})
    with pytest.raises(ValueError, match="missing key"):
        CampaignSpec.from_dict({"name": "x", "agents": ["overclock"]})


def test_from_dict_rejects_scalar_where_array_expected():
    with pytest.raises(ValueError, match="must be an array"):
        CampaignSpec.from_dict(
            {"name": "x", "agents": "overclock", "scales": [2]}
        )


def test_loads_toml_round_trip():
    spec = loads_toml(SMOKE_TOML)
    assert spec.name == "demo"
    assert spec.agents == ("overclock", "harvest")
    assert spec.scales == (2, 4)
    assert spec.seeds == (0, 1)
    assert len(spec.faults) == 2
    assert spec.faults[0].intensities == (0.5, 0.9)
    assert spec.faults[1].kind == "crash_restart"


# -- the 3.10 fallback parser ------------------------------------------------


def test_minimal_toml_parser_matches_tomllib_on_campaign_subset():
    data = _parse_minimal_toml(SMOKE_TOML)
    try:
        import tomllib
    except ImportError:
        tomllib = None
    if tomllib is not None:
        assert data == tomllib.loads(SMOKE_TOML)
    assert data["name"] == "demo"
    assert data["scales"] == [2, 4]
    assert data["fault"][0]["intensities"] == [0.5, 0.9]
    assert data["fault"][1]["kind"] == "crash_restart"


def test_minimal_toml_parser_values_and_errors():
    assert _parse_minimal_toml('x = true\ny = "a#b"\nz = 1.5') == {
        "x": True, "y": "a#b", "z": 1.5,
    }
    assert _parse_minimal_toml("empty = []") == {"empty": []}
    with pytest.raises(ValueError, match="key = value"):
        _parse_minimal_toml("just a line")
    with pytest.raises(ValueError, match="cannot parse"):
        _parse_minimal_toml("x = {nested = 1}")
    with pytest.raises(ValueError, match="subset"):
        _parse_minimal_toml("[table]")
