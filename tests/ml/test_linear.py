"""Tests for online linear regression."""

import numpy as np
import pytest

from repro.ml.linear import OnlineLinearRegression


def test_learns_simple_linear_function():
    rng = np.random.default_rng(0)
    model = OnlineLinearRegression(n_features=2, learning_rate=0.05)
    for _ in range(3000):
        x = rng.uniform(-1, 1, size=2)
        y = 3.0 * x[0] - 2.0 * x[1] + 0.5
        model.update(x, y)
    assert model.weights == pytest.approx([3.0, -2.0], abs=0.05)
    assert model.bias == pytest.approx(0.5, abs=0.05)


def test_update_returns_pre_update_error():
    model = OnlineLinearRegression(n_features=1, learning_rate=0.1)
    error = model.update([1.0], 2.0)
    assert error == pytest.approx(-2.0)  # prediction 0 minus target 2


def test_gradient_clipping_bounds_single_step_damage():
    clipped = OnlineLinearRegression(
        n_features=1, learning_rate=0.1, clip_gradient=1.0
    )
    unclipped = OnlineLinearRegression(
        n_features=1, learning_rate=0.1, clip_gradient=None
    )
    # One absurd out-of-range target (the §3.2 bad-data failure).
    clipped.update([1.0], 1e9)
    unclipped.update([1.0], 1e9)
    assert abs(clipped.weights[0]) <= 0.1 + 1e-12
    assert abs(unclipped.weights[0]) > 1e6


def test_l2_shrinks_weights():
    model = OnlineLinearRegression(n_features=1, learning_rate=0.1, l2=0.5)
    for _ in range(200):
        model.update([1.0], 1.0)
    unregularized = OnlineLinearRegression(n_features=1, learning_rate=0.1)
    for _ in range(200):
        unregularized.update([1.0], 1.0)
    assert abs(model.weights[0]) < abs(unregularized.weights[0])


def test_feature_shape_validated():
    model = OnlineLinearRegression(n_features=3)
    with pytest.raises(ValueError):
        model.predict([1.0, 2.0])
    with pytest.raises(ValueError):
        model.update([1.0], 0.0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        OnlineLinearRegression(n_features=0)
    with pytest.raises(ValueError):
        OnlineLinearRegression(n_features=1, learning_rate=0.0)
    with pytest.raises(ValueError):
        OnlineLinearRegression(n_features=1, l2=-1.0)
