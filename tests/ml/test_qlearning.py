"""Tests for tabular Q-learning."""

import numpy as np
import pytest

from repro.ml.qlearning import QLearner
from repro.sim import RngStreams


def make_learner(**kwargs):
    defaults = dict(
        n_actions=3,
        rng=RngStreams(0).get("q"),
        learning_rate=0.5,
        discount=0.0,
        epsilon=0.0,
    )
    defaults.update(kwargs)
    return QLearner(**defaults)


def test_update_moves_q_toward_reward():
    learner = make_learner()
    learner.update("s", 1, reward=10.0)
    assert learner.q_values("s")[1] == pytest.approx(5.0)  # lr 0.5
    learner.update("s", 1, reward=10.0)
    assert learner.q_values("s")[1] == pytest.approx(7.5)


def test_td_error_returned():
    learner = make_learner()
    assert learner.update("s", 0, reward=4.0) == pytest.approx(4.0)


def test_greedy_picks_best_learned_action():
    learner = make_learner()
    for _ in range(50):
        learner.update("s", 0, reward=1.0)
        learner.update("s", 1, reward=5.0)
        learner.update("s", 2, reward=-1.0)
    action, explored = learner.select_action("s")
    assert action == 1
    assert explored is False


def test_exploration_rate_close_to_epsilon():
    learner = make_learner(epsilon=0.1)
    for _ in range(20):
        learner.update("s", 1, reward=1.0)
    draws = 5000
    explored = sum(learner.select_action("s")[1] for _ in range(draws))
    assert explored / draws == pytest.approx(0.1, abs=0.02)


def test_bootstrap_uses_next_state_max():
    learner = make_learner(discount=0.9)
    learner.update("next", 2, reward=10.0)       # Q(next, 2) = 5
    learner.update("s", 0, reward=0.0, next_state="next")
    assert learner.q_values("s")[0] == pytest.approx(0.5 * 0.9 * 5.0)


def test_terminal_update_has_no_bootstrap():
    learner = make_learner(discount=0.9)
    learner.update("next", 2, reward=10.0)
    learner.update("s", 0, reward=0.0, next_state=None)
    assert learner.q_values("s")[0] == pytest.approx(0.0)


def test_learns_contextual_policy():
    """Different states should learn different best actions."""
    rng = RngStreams(1).get("env")
    learner = make_learner(epsilon=0.2, learning_rate=0.3,
                           rng=RngStreams(1).get("agent"))
    rewards = {"cpu-bound": [0.0, 1.0, 2.0], "idle": [2.0, 0.0, -2.0]}
    for _ in range(1500):
        state = "cpu-bound" if rng.random() < 0.5 else "idle"
        action, _ = learner.select_action(state)
        noise = rng.normal(0, 0.1)
        learner.update(state, action, rewards[state][action] + noise)
    policy = learner.greedy_policy()
    assert policy["cpu-bound"] == 2
    assert policy["idle"] == 0


def test_optimistic_initialization():
    learner = make_learner(initial_q=5.0)
    assert np.all(learner.q_values("fresh") == 5.0)


def test_action_bounds_checked():
    learner = make_learner()
    with pytest.raises(ValueError):
        learner.update("s", 3, 0.0)


def test_constructor_validation():
    rng = RngStreams(0).get("q")
    with pytest.raises(ValueError):
        QLearner(n_actions=1, rng=rng)
    with pytest.raises(ValueError):
        QLearner(n_actions=2, rng=rng, epsilon=1.5)
    with pytest.raises(ValueError):
        QLearner(n_actions=2, rng=rng, learning_rate=0.0)
    with pytest.raises(ValueError):
        QLearner(n_actions=2, rng=rng, discount=1.0)
