"""Property-based tests (hypothesis) for ML substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.bandits import BetaThompsonSampler
from repro.ml.costsensitive import asymmetric_core_costs
from repro.ml.features import distributional_features
from repro.ml.metrics import RollingMean, StreamingMeanVar
from repro.ml.qlearning import QLearner
from repro.sim import RngStreams

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(
    true_class=st.integers(min_value=0, max_value=9),
    under=st.floats(min_value=0.1, max_value=100, allow_nan=False),
    over=st.floats(min_value=0.1, max_value=100, allow_nan=False),
)
def test_cost_vector_minimized_exactly_at_truth(true_class, under, over):
    costs = asymmetric_core_costs(true_class, 10, under, over)
    assert costs.min() == 0.0
    assert int(np.argmin(costs)) == true_class
    assert np.all(costs >= 0.0)


@given(st.lists(finite_floats, min_size=1, max_size=300))
def test_features_are_finite_and_ordered(values):
    features = distributional_features(np.array(values))
    named = dict(
        zip(
            ["mean", "std", "minimum", "p50", "p90", "p99", "maximum",
             "last", "trend"],
            features,
        )
    )
    def le(a, b):
        return a <= b + 1e-9 * max(1.0, abs(a), abs(b))

    assert np.all(np.isfinite(features))
    assert le(named["minimum"], named["p50"]) and le(named["p50"], named["p90"])
    assert le(named["p90"], named["p99"])
    assert le(named["p99"], named["maximum"])
    assert le(named["minimum"], named["mean"]) and le(named["mean"], named["maximum"])


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_streaming_meanvar_matches_numpy(values):
    stats = StreamingMeanVar()
    for value in values:
        stats.observe(value)
    array = np.array(values)
    assert stats.mean == np.float64(array.mean()).item() or abs(
        stats.mean - array.mean()
    ) <= 1e-6 * max(1.0, abs(array.mean()))
    assert abs(stats.variance - array.var()) <= 1e-4 * max(1.0, array.var())


@given(
    values=st.lists(finite_floats, min_size=1, max_size=100),
    window=st.integers(min_value=1, max_value=20),
)
def test_rolling_mean_equals_tail_mean(values, window):
    rolling = RollingMean(window=window)
    for value in values:
        rolling.observe(value)
    expected = np.mean(values[-window:])
    assert rolling.mean is not None
    assert abs(rolling.mean - expected) <= 1e-6 * max(1.0, abs(expected))


@given(
    rewards=st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_q_values_stay_bounded_by_reward_range(rewards):
    """With gamma=0 and lr<=1, Q stays within the observed reward hull."""
    learner = QLearner(
        n_actions=2,
        rng=RngStreams(0).get("q"),
        learning_rate=0.5,
        discount=0.0,
        epsilon=0.0,
    )
    for reward in rewards:
        learner.update("s", 0, reward)
    lo, hi = min(min(rewards), 0.0), max(max(rewards), 0.0)
    assert lo - 1e-9 <= learner.q_values("s")[0] <= hi + 1e-9


@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=200),
    arm_count=st.integers(min_value=2, max_value=6),
)
def test_beta_posterior_counts_conserved(outcomes, arm_count):
    """alpha+beta grows by exactly one per update, split by outcome."""
    sampler = BetaThompsonSampler(
        n_arms=arm_count, rng=RngStreams(1).get("ts")
    )
    rng = RngStreams(2).get("arms")
    for outcome in outcomes:
        arm = int(rng.integers(arm_count))
        sampler.update(arm, outcome)
    total_mass = sampler.alpha.sum() + sampler.beta.sum()
    assert total_mass == 2 * arm_count + len(outcomes)
    assert sampler.alpha.sum() == arm_count + sum(outcomes)
    assert np.all(sampler.pulls >= 0)
