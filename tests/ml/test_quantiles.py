"""Bit-equality of the pure-Python percentile against np.percentile."""

import numpy as np
import pytest

from repro.ml.quantiles import percentile, percentile_of_sorted


def test_matches_numpy_bit_for_bit_randomized():
    rng = np.random.default_rng(7)
    for trial in range(300):
        n = int(rng.integers(1, 200))
        samples = list(rng.normal(0, 100, n))
        for q in (0, 1, 25, 50, 75, 90, 99, 99.9, 100,
                  float(rng.uniform(0, 100))):
            expected = float(np.percentile(np.asarray(samples), q))
            assert percentile(samples, q) == expected


def test_matches_numpy_on_duplicates_and_extremes():
    cases = [
        [0.0],
        [1.0, 1.0, 1.0],
        [5.0, -5.0],
        [float(i) for i in range(10)],
        [1e300, -1e300, 0.0, 1e-300],
    ]
    for samples in cases:
        for q in (0, 10, 50, 90, 100):
            assert percentile(samples, q) == float(
                np.percentile(np.asarray(samples), q)
            )


def test_sorted_form_accepts_numpy_arrays():
    samples = np.array([3.0, 1.0, 2.0])
    ordered = np.sort(samples)
    assert percentile_of_sorted(ordered, 50) == 2.0


def test_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)
