"""Tests for streaming metric helpers."""

import pytest

from repro.ml.metrics import Ewma, RollingMean, RollingRate, StreamingMeanVar


def test_rolling_mean_window_eviction():
    rolling = RollingMean(window=3)
    for value in [1.0, 2.0, 3.0, 4.0]:
        rolling.observe(value)
    assert rolling.mean == pytest.approx(3.0)  # last three: 2,3,4
    assert len(rolling) == 3


def test_rolling_mean_min_count_gate():
    rolling = RollingMean(window=10, min_count=3)
    rolling.observe(1.0)
    rolling.observe(2.0)
    assert rolling.mean is None
    rolling.observe(3.0)
    assert rolling.mean == pytest.approx(2.0)


def test_rolling_mean_reset():
    rolling = RollingMean(window=5)
    rolling.observe(10.0)
    rolling.reset()
    assert rolling.mean is None
    assert len(rolling) == 0


def test_rolling_rate():
    rate = RollingRate(window=4)
    for flag in [True, True, False, False]:
        rate.observe(flag)
    assert rate.rate == pytest.approx(0.5)


def test_rolling_mean_validation():
    with pytest.raises(ValueError):
        RollingMean(window=0)
    with pytest.raises(ValueError):
        RollingMean(window=3, min_count=5)


def test_streaming_meanvar_matches_closed_form():
    stats = StreamingMeanVar()
    values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    for value in values:
        stats.observe(value)
    assert stats.mean == pytest.approx(5.0)
    assert stats.variance == pytest.approx(4.0)
    assert stats.std == pytest.approx(2.0)


def test_streaming_meanvar_single_value():
    stats = StreamingMeanVar()
    stats.observe(3.0)
    assert stats.mean == 3.0
    assert stats.variance == 0.0


def test_ewma_first_value_initializes():
    ewma = Ewma(alpha=0.5)
    assert ewma.value is None
    ewma.observe(10.0)
    assert ewma.value == 10.0
    ewma.observe(0.0)
    assert ewma.value == pytest.approx(5.0)


def test_ewma_alpha_validated():
    with pytest.raises(ValueError):
        Ewma(alpha=0.0)
    with pytest.raises(ValueError):
        Ewma(alpha=1.5)
