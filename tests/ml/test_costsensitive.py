"""Tests for the cost-sensitive one-against-all classifier."""

import numpy as np
import pytest

from repro.ml.costsensitive import CostSensitiveClassifier, asymmetric_core_costs


def test_cost_vector_shape_and_zero_at_truth():
    costs = asymmetric_core_costs(true_class=3, n_classes=6)
    assert costs.shape == (6,)
    assert costs[3] == 0.0


def test_underprediction_costs_more_than_overprediction():
    costs = asymmetric_core_costs(
        true_class=3, n_classes=7, under_cost=4.0, over_cost=1.0
    )
    assert costs[1] == pytest.approx(8.0)   # 2 cores short
    assert costs[5] == pytest.approx(2.0)   # 2 cores extra
    assert costs[1] > costs[5]


def test_true_class_validated():
    with pytest.raises(ValueError):
        asymmetric_core_costs(true_class=9, n_classes=4)


def test_learns_constant_demand():
    rng = np.random.default_rng(1)
    model = CostSensitiveClassifier(n_classes=5, n_features=2,
                                    learning_rate=0.1)
    for _ in range(500):
        features = rng.uniform(0, 1, 2)
        model.update(features, asymmetric_core_costs(2, 5))
    assert model.predict(rng.uniform(0, 1, 2)) == 2


def test_learns_feature_dependent_demand():
    """Class should track a demand level encoded in the features."""
    rng = np.random.default_rng(2)
    model = CostSensitiveClassifier(n_classes=4, n_features=4,
                                    learning_rate=0.1)

    def one_hot(demand):
        features = np.zeros(4)
        features[demand] = 1.0
        return features

    for _ in range(4000):
        demand = int(rng.integers(0, 4))
        model.update(one_hot(demand), asymmetric_core_costs(demand, 4))
    for demand in range(4):
        assert model.predict(one_hot(demand)) == demand


def test_asymmetric_costs_bias_toward_overprediction():
    """With noisy labels, the argmin-cost class errs on the high side."""
    rng = np.random.default_rng(3)
    model = CostSensitiveClassifier(n_classes=8, n_features=1,
                                    learning_rate=0.05)
    # True demand fluctuates 2..4 uniformly; under-cost is much steeper.
    for _ in range(5000):
        demand = int(rng.integers(2, 5))
        model.update([1.0], asymmetric_core_costs(
            demand, 8, under_cost=10.0, over_cost=1.0))
    prediction = model.predict([1.0])
    assert prediction >= 4  # covers the worst case, not the average


def test_cost_vector_shape_validated():
    model = CostSensitiveClassifier(n_classes=3, n_features=1)
    with pytest.raises(ValueError):
        model.update([0.0], [1.0, 2.0])


def test_needs_two_classes():
    with pytest.raises(ValueError):
        CostSensitiveClassifier(n_classes=1, n_features=1)
