"""Tests for Beta-Bernoulli Thompson sampling."""

import numpy as np
import pytest

from repro.ml.bandits import BetaThompsonSampler
from repro.sim import RngStreams


def test_converges_to_best_arm():
    rng = RngStreams(0)
    sampler = BetaThompsonSampler(n_arms=4, rng=rng.get("ts"))
    env = rng.get("env")
    true_p = [0.1, 0.3, 0.9, 0.5]
    for _ in range(800):
        arm = sampler.select_arm()
        sampler.update(arm, env.random() < true_p[arm])
    # Most pulls should have gone to the best arm by the end.
    assert int(np.argmax(sampler.pulls)) == 2
    assert sampler.pulls[2] > 0.6 * sampler.pulls.sum()


def test_posterior_mean_tracks_observations():
    sampler = BetaThompsonSampler(n_arms=2, rng=RngStreams(1).get("ts"))
    for _ in range(40):
        sampler.update(0, True)
        sampler.update(1, False)
    means = sampler.mean_estimates()
    assert means[0] > 0.9
    assert means[1] < 0.1


def test_weighted_update_is_partial_evidence():
    sampler = BetaThompsonSampler(n_arms=2, rng=RngStreams(2).get("ts"))
    sampler.update_weighted(0, 0.75)
    assert sampler.alpha[0] == pytest.approx(1.75)
    assert sampler.beta[0] == pytest.approx(1.25)
    with pytest.raises(ValueError):
        sampler.update_weighted(0, 1.5)


def test_selection_is_reproducible_given_seed():
    def run(seed):
        sampler = BetaThompsonSampler(n_arms=3, rng=RngStreams(seed).get("t"))
        picks = []
        for i in range(50):
            arm = sampler.select_arm()
            picks.append(arm)
            sampler.update(arm, i % 2 == 0)
        return picks

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_arm_bounds_checked():
    sampler = BetaThompsonSampler(n_arms=2, rng=RngStreams(0).get("t"))
    with pytest.raises(ValueError):
        sampler.update(2, True)


def test_constructor_validation():
    rng = RngStreams(0).get("t")
    with pytest.raises(ValueError):
        BetaThompsonSampler(n_arms=1, rng=rng)
    with pytest.raises(ValueError):
        BetaThompsonSampler(n_arms=2, rng=rng, prior_alpha=0.0)
