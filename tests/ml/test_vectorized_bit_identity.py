"""Bit-identity: the vectorized ML epoch path vs the frozen seed copy.

The vectorized ``CostSensitiveClassifier`` (one weight matrix, rank-1
updates), the folded ``distributional_features`` (shared mean/std sum,
reused scratch), and the buffer-reusing ``Hypervisor.sample_usage``
must reproduce the frozen per-class implementations in
``repro.perf.legacy_ml`` *exactly* — same predictions, same weights,
same telemetry bits — under identical random streams.  Anything less
would silently flip the pinned fleet/artifact digests.
"""

import numpy as np
import pytest

import repro.perf.legacy_ml as legacy
from repro.ml.costsensitive import CostSensitiveClassifier, asymmetric_core_costs
from repro.ml.features import FeatureExtractor, distributional_features
from repro.node.hypervisor import Hypervisor

N_CLASSES = 9
N_FEATURES = 9


def _legacy_weight_matrix(classifier: "legacy.CostSensitiveClassifier"):
    """The per-class regressors flattened to the vectorized layout."""
    rows = [
        np.concatenate([reg.weights, [reg.bias]])
        for reg in classifier._regressors
    ]
    return np.stack(rows)


@pytest.mark.parametrize("l2", [0.0, 0.01])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_classifier_lockstep_1k_epochs(seed, l2):
    """Predictions, weights, and update counters agree for 1000 epochs."""
    rng = np.random.default_rng(seed)
    vectorized = CostSensitiveClassifier(
        N_CLASSES, N_FEATURES, learning_rate=0.05, l2=l2
    )
    frozen = legacy.CostSensitiveClassifier(
        N_CLASSES, N_FEATURES, learning_rate=0.05, l2=l2
    )
    for epoch in range(1000):
        features = rng.uniform(-1.0, 1.0, N_FEATURES)
        label = int(rng.integers(0, N_CLASSES))
        costs = asymmetric_core_costs(label, N_CLASSES)
        assert vectorized.predict(features) == frozen.predict(features)
        vectorized.update(features, costs)
        frozen.update(features, costs)
        if epoch % 100 == 0:
            probe = rng.uniform(-1.0, 1.0, N_FEATURES)
            assert np.array_equal(
                vectorized.predicted_costs(probe),
                frozen.predicted_costs(probe),
            )
    assert np.array_equal(vectorized.weights, _legacy_weight_matrix(frozen))
    assert vectorized.updates == frozen.updates == 1000
    assert all(reg.updates == 1000 for reg in frozen._regressors)


def test_classifier_lockstep_with_extreme_targets():
    """Gradient clipping engages identically on absurd cost vectors."""
    rng = np.random.default_rng(7)
    vectorized = CostSensitiveClassifier(N_CLASSES, N_FEATURES)
    frozen = legacy.CostSensitiveClassifier(N_CLASSES, N_FEATURES)
    for _ in range(200):
        features = rng.uniform(-1.0, 1.0, N_FEATURES)
        costs = rng.uniform(-1e9, 1e9, N_CLASSES)
        vectorized.update(features, costs)
        frozen.update(features, costs)
        assert vectorized.predict(features) == frozen.predict(features)
    assert np.array_equal(vectorized.weights, _legacy_weight_matrix(frozen))


def test_features_match_legacy_over_random_windows():
    """Folded mean/std/sort extraction is bit-identical, window by window.

    One shared extractor across all windows proves the reused scratch
    carries no state between calls.
    """
    rng = np.random.default_rng(3)
    extractor = FeatureExtractor()
    for _ in range(300):
        n = int(rng.integers(1, 600))
        scale = float(10.0 ** int(rng.integers(-2, 3)))
        samples = rng.uniform(0.0, 8.0, n) * scale
        assert np.array_equal(
            extractor(samples), legacy.distributional_features(samples)
        )
        assert np.array_equal(
            distributional_features(samples),
            legacy.distributional_features(samples),
        )


def test_feature_vectors_do_not_alias_across_calls():
    """Callers retain feature vectors across epochs (previous vs latest);
    the extractor must hand out a fresh array every call."""
    extractor = FeatureExtractor()
    first = extractor(np.array([1.0, 2.0, 3.0]))
    kept = first.copy()
    extractor(np.array([7.0, 8.0, 9.0, 10.0]))
    assert np.array_equal(first, kept)


class _FakeKernel:
    __slots__ = ("now",)

    def __init__(self):
        self.now = 0


def test_hypervisor_sampling_matches_legacy_bit_for_bit():
    """Buffer-reusing sampling == seed allocation-churn sampling."""
    kernel_live = _FakeKernel()
    kernel_frozen = _FakeKernel()
    live = Hypervisor(kernel_live, n_cores=8, history_horizon_us=1_000_000)
    frozen = legacy.Hypervisor(
        kernel_frozen, n_cores=8, history_horizon_us=1_000_000
    )
    rng_live = np.random.default_rng(11)
    rng_frozen = np.random.default_rng(11)
    drive = np.random.default_rng(5)
    for step in range(400):
        advance = int(drive.integers(100, 2_000))
        kernel_live.now += advance
        kernel_frozen.now += advance
        if drive.random() < 0.8:
            demand = float(drive.uniform(0.0, 8.0))
            live.set_demand(demand)
            frozen.set_demand(demand)
        else:
            harvested = int(drive.integers(0, 8))
            live.set_harvested(harvested)
            frozen.set_harvested(harvested)
        if step % 10 == 0:
            got = live.sample_usage(
                25_000, 50, rng=rng_live, noise_cores=0.05
            )
            want = frozen.sample_usage(
                25_000, 50, rng=rng_frozen, noise_cores=0.05
            )
            assert np.array_equal(got, want)
            assert live.max_demand_over(25_000) == frozen.max_demand_over(
                25_000
            )
            assert live.max_demand_over(2_000_000) == frozen.max_demand_over(
                2_000_000
            )


def test_sample_windows_do_not_alias_across_epochs():
    """Returned windows are retained across epochs by HarvestModel; the
    internal staging buffers must never be handed back to callers."""
    kernel = _FakeKernel()
    hypervisor = Hypervisor(kernel, n_cores=8)
    kernel.now = 30_000
    hypervisor.set_demand(3.0)
    kernel.now = 60_000
    first = hypervisor.sample_usage(25_000, 50)
    kept = first.copy()
    hypervisor.set_demand(7.0)
    kernel.now = 90_000
    hypervisor.sample_usage(25_000, 50)
    assert np.array_equal(first, kept)
