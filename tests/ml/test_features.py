"""Tests for distributional feature extraction."""

import numpy as np
import pytest

from repro.ml.features import FEATURE_NAMES, distributional_features


def test_feature_vector_matches_name_list():
    features = distributional_features(np.arange(100.0))
    assert features.shape == (len(FEATURE_NAMES),)


def test_constant_window():
    features = distributional_features(np.full(50, 3.0))
    named = dict(zip(FEATURE_NAMES, features))
    assert named["mean"] == 3.0
    assert named["std"] == 0.0
    assert named["maximum"] == 3.0
    assert named["trend"] == 0.0


def test_ramp_has_positive_trend():
    features = distributional_features(np.linspace(0, 8, 100))
    named = dict(zip(FEATURE_NAMES, features))
    assert named["trend"] > 0
    assert named["last"] == pytest.approx(8.0)


def test_burst_shows_in_high_percentiles():
    window = np.zeros(200)
    window[-3:] = 8.0  # short burst at the end
    named = dict(zip(FEATURE_NAMES, distributional_features(window)))
    assert named["p50"] == 0.0
    assert named["p99"] == pytest.approx(8.0)
    assert named["maximum"] == 8.0


def test_single_sample_window():
    named = dict(zip(FEATURE_NAMES, distributional_features(np.array([2.0]))))
    assert named["mean"] == 2.0
    assert named["trend"] == 0.0


def test_empty_window_rejected():
    with pytest.raises(ValueError):
        distributional_features(np.array([]))
    with pytest.raises(ValueError):
        distributional_features(np.zeros((2, 2)))
