"""Properties of the canonical event encoding.

The conformance digests are only as trustworthy as the encoding they
hash: it must be injective on distinct events (or two different runs
could collide into "conformant"), independent of dict insertion order
(or a refactor reordering kwargs would "diverge"), and share its scalar
canonicalization with the pinned experiment digests.
"""

import enum

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import (
    EventKind,
    canonical_scalar,
    decode_event,
    encode_event,
)
from repro.experiments import common as experiments_common

# JSON-like detail values; tuples are excluded on purpose — they
# canonicalize to lists, which is an intended (not accidental) collision.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)
_details = st.dictionaries(
    st.text(max_size=10),
    st.one_of(
        _scalars,
        st.lists(_scalars, max_size=4),
        st.dictionaries(st.text(max_size=10), _scalars, max_size=4),
    ),
    max_size=6,
)
_events = st.tuples(
    st.integers(min_value=0, max_value=2**40),
    st.sampled_from(["tick", "queue.put", "ml.epoch", "wl.scan"]),
    st.text(min_size=1, max_size=20),
    _details,
)


@given(_events, _events)
@settings(max_examples=200)
def test_encoding_is_injective_on_distinct_events(event_a, event_b):
    if event_a != event_b:
        assert encode_event(*event_a) != encode_event(*event_b)


@given(_events)
@settings(max_examples=200)
def test_encoding_is_stable_across_dict_ordering(event):
    time_us, kind, agent, details = event
    reordered = dict(reversed(list(details.items())))
    assert encode_event(time_us, kind, agent, details) == encode_event(
        time_us, kind, agent, reordered
    )


@given(_events)
@settings(max_examples=100)
def test_decode_round_trips_the_canonical_form(event):
    time_us, kind, agent, details = event
    decoded = decode_event(encode_event(time_us, kind, agent, details))
    assert decoded["time_us"] == time_us
    assert decoded["kind"] == kind
    assert decoded["agent"] == agent
    # Encoding the decoded details again is a fixed point.
    assert encode_event(
        time_us, kind, agent, decoded["details"]
    ) == encode_event(time_us, kind, agent, details)


def test_event_kind_members_encode_as_their_value():
    payload = encode_event(5, EventKind.PREDICTION_SENT, "agent0", {})
    assert decode_event(payload)["kind"] == EventKind.PREDICTION_SENT.value


def test_numpy_scalars_encode_like_python_scalars():
    plain = encode_event(1, "k", "a", {"x": 2.5, "n": 7})
    numpied = encode_event(
        1, "k", "a", {"x": np.float64(2.5), "n": np.int64(7)}
    )
    assert plain == numpied


def test_enums_and_tuples_canonicalize():
    class Color(enum.Enum):
        RED = "red"

    payload = encode_event(1, "k", "a", {"c": Color.RED, "t": (1, 2)})
    details = decode_event(payload)["details"]
    assert details == {"c": "red", "t": [1, 2]}


def test_experiment_digests_share_the_scalar_canonicalization():
    # The experiment digest's cell canonicalizer IS canonical_scalar —
    # one definition, so conformance terminal states and the pinned
    # experiment digests can never drift apart.
    assert experiments_common._canonical_cell is canonical_scalar


@given(st.one_of(_scalars, st.floats(allow_nan=True)))
@settings(max_examples=200)
def test_canonical_scalar_matches_digest_cell_semantics(value):
    got = canonical_scalar(value)
    if isinstance(value, bool) or value is None or isinstance(value, str):
        assert got == str(value)
    else:
        assert got == repr(float(value))
