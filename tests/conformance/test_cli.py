"""The ``repro conformance`` command line, driven in-process."""

import pytest

from repro.cli import main


def test_list_shows_scenarios_and_impls(capsys):
    assert main(["conformance", "list"]) == 0
    out = capsys.readouterr().out
    assert "kernel-churn-s3" in out
    assert "agent-overclock-synthetic-s7" in out
    assert "kernel:seed" in out
    assert "agent:current" in out


def test_record_then_check_round_trips(tmp_path, capsys):
    args = ["--dir", str(tmp_path), "--scenario", "ml-epochs-s3",
            "--skip-golden"]
    assert main(["conformance", "record"] + args) == 0
    out = capsys.readouterr().out
    assert "recorded" in out and "ml-epochs-s3.kav.json" in out

    assert main(["conformance", "check"] + args) == 0
    out = capsys.readouterr().out
    assert "vectors OK" in out


def test_check_fails_on_missing_vector(tmp_path, capsys):
    assert main([
        "conformance", "check", "--dir", str(tmp_path),
        "--scenario", "kernel-churn-s3", "--skip-golden",
    ]) == 1
    out = capsys.readouterr().out
    assert "NONCONFORMANT" in out


def test_diff_equivalent_impls_exits_zero(capsys):
    assert main([
        "conformance", "diff", "kernel:current", "kernel:seed",
        "--scenario", "kernel-churn-s3",
    ]) == 0
    out = capsys.readouterr().out
    assert "equivalent" in out


def test_diff_rejects_cross_family_pairs():
    with pytest.raises(SystemExit, match="families"):
        main(["conformance", "diff", "kernel:current", "ml:seed"])


def test_unknown_scenario_is_a_clean_error():
    with pytest.raises(SystemExit, match="unknown scenario"):
        main([
            "conformance", "check", "--scenario", "no-such-scenario",
        ])


def test_unknown_impl_is_a_clean_error():
    with pytest.raises(SystemExit, match="unknown"):
        main(["conformance", "diff", "kernel:current", "kernel:nope"])
