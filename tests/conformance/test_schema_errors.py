"""Stale or malformed vector files must fail loudly, never pass silently."""

import json

import pytest

from repro.conformance.corpus import (
    load_golden_digests,
    save_golden_digests,
)
from repro.conformance.vectors import (
    SCHEMA_VERSION,
    VectorSchemaError,
    load_vector,
    record_vector,
    save_vector,
)


@pytest.fixture
def vector_path(tmp_path):
    return save_vector(record_vector("ml-epochs-s3"), str(tmp_path))


def _rewrite(path, mutate):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    mutate(data)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
    return path


def test_stale_schema_version_tells_user_to_rerecord(vector_path):
    _rewrite(vector_path, lambda d: d.update(schema=SCHEMA_VERSION + 1))
    with pytest.raises(VectorSchemaError) as error:
        load_vector(vector_path)
    message = str(error.value)
    assert f"schema {SCHEMA_VERSION + 1}" in message
    assert "repro conformance record" in message


def test_missing_keys_are_named(vector_path):
    _rewrite(vector_path, lambda d: (d.pop("checkpoints"), d.pop("terminal")))
    with pytest.raises(VectorSchemaError) as error:
        load_vector(vector_path)
    assert "checkpoints" in str(error.value)
    assert "terminal" in str(error.value)


def test_invalid_json_is_a_schema_error(tmp_path):
    path = tmp_path / "broken.kav.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(VectorSchemaError, match="not a valid"):
        load_vector(str(path))


def test_non_object_vector_is_a_schema_error(tmp_path):
    path = tmp_path / "list.kav.json"
    path.write_text("[1, 2, 3]", encoding="utf-8")
    with pytest.raises(VectorSchemaError, match="JSON object"):
        load_vector(str(path))


def test_golden_table_schema_is_checked(tmp_path):
    save_golden_digests(
        {
            "schema": SCHEMA_VERSION + 5,
            "experiment_scale": 0.2,
            "fleet": {},
            "experiments": {},
        },
        str(tmp_path),
    )
    with pytest.raises(VectorSchemaError, match="repro conformance record"):
        load_golden_digests(str(tmp_path))


def test_golden_table_missing_key_is_named(tmp_path):
    save_golden_digests(
        {"schema": SCHEMA_VERSION, "fleet": {}, "experiments": {}},
        str(tmp_path),
    )
    with pytest.raises(VectorSchemaError, match="experiment_scale"):
        load_golden_digests(str(tmp_path))
