"""Known-answer vectors: record → save → load → check round trip."""

import dataclasses

import pytest

from repro.conformance.vectors import (
    check_vector,
    load_vector,
    record_vector,
    save_vector,
)


@pytest.fixture(scope="module")
def kernel_vector():
    return record_vector("kernel-churn-s3")


def test_recorded_vector_checks_clean(kernel_vector):
    assert check_vector(kernel_vector) == []


def test_vector_survives_a_disk_round_trip(kernel_vector, tmp_path):
    path = save_vector(kernel_vector, str(tmp_path))
    loaded = load_vector(path)
    assert loaded == kernel_vector
    assert check_vector(loaded) == []


def test_recording_is_deterministic(kernel_vector):
    again = record_vector("kernel-churn-s3")
    assert again == kernel_vector


def test_tampered_checkpoint_names_the_divergent_window(kernel_vector):
    checkpoints = [list(row) for row in kernel_vector.checkpoints]
    checkpoints[2][2] = "0" * 64
    tampered = dataclasses.replace(kernel_vector, checkpoints=checkpoints)
    problems = check_vector(tampered)
    assert len(problems) == 1
    assert "first divergence at checkpoint index 600" in problems[0]
    assert "[400, 600)" in problems[0]


def test_tampered_terminal_state_names_the_key(kernel_vector):
    state = dict(kernel_vector.state)
    state["puts"] = "999999"
    tampered = dataclasses.replace(kernel_vector, state=state)
    problems = check_vector(tampered)
    assert any("terminal state 'puts'" in p for p in problems)


def test_tampered_terminal_digest_is_reported(kernel_vector):
    terminal = list(kernel_vector.terminal)
    terminal[2] = "f" * 64
    tampered = dataclasses.replace(kernel_vector, terminal=terminal)
    problems = check_vector(tampered)
    assert any("terminal trace mismatch" in p for p in problems)


def test_agent_vector_round_trips(tmp_path):
    vector = record_vector("agent-overclock-synthetic-s7")
    assert vector.impl == "agent:current"
    assert vector.checkpoints  # cadence chosen so agent runs checkpoint
    path = save_vector(vector, str(tmp_path))
    assert check_vector(load_vector(path)) == []


def test_record_rejects_family_mismatch():
    with pytest.raises(ValueError, match="family"):
        record_vector("kernel-churn-s3", impl_name="ml:current")
