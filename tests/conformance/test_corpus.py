"""The committed corpus: coverage, conformance, and baseline consistency."""

from pathlib import Path

import pytest

from repro.conformance.corpus import (
    GOLDEN_FILENAME,
    check_corpus,
    load_golden_digests,
)
from repro.conformance.scenarios import SCENARIOS, default_scenarios
from repro.conformance.vectors import load_vector, vector_filename
from repro.perf.baselines import (
    GOLDEN_EXPERIMENT_DIGESTS,
    GOLDEN_EXPERIMENT_SCALE,
    GOLDEN_FLEET_DIGESTS,
)

CORPUS_DIR = str(Path(__file__).resolve().parent / "vectors")

#: One representative per family for the in-suite live check; CI's
#: ``conformance-smoke`` job checks every vector plus the golden table.
_SPOT_CHECK = [
    "agent-overclock-synthetic-s7",
    "kernel-churn-s3",
    "ml-epochs-s9",
    "workloads-objectstore-s3",
]


def test_corpus_covers_every_scenario():
    committed = {p.name for p in Path(CORPUS_DIR).glob("*.kav.json")}
    expected = {vector_filename(name) for name in default_scenarios()}
    assert committed == expected
    assert (Path(CORPUS_DIR) / GOLDEN_FILENAME).exists()


def test_corpus_covers_all_agent_kinds_and_seeds():
    agents = {
        (spec.agent, spec.workload, spec.seed)
        for spec in SCENARIOS.values()
        if spec.family == "agent"
    }
    assert {agent for agent, _, _ in agents} == {
        "overclock", "harvest", "memory",
    }
    for kind in ("overclock", "harvest", "memory"):
        workloads = {w for a, w, _ in agents if a == kind}
        seeds = {s for a, _, s in agents if a == kind}
        assert len(workloads) >= 2
        assert len(seeds) >= 2


@pytest.mark.parametrize("scenario", _SPOT_CHECK)
def test_committed_vectors_check_clean(scenario):
    assert check_corpus(
        CORPUS_DIR, scenarios=[scenario], golden=False
    ) == []


def test_committed_vectors_all_load(tmp_path):
    for name in default_scenarios():
        vector = load_vector(
            str(Path(CORPUS_DIR) / vector_filename(name))
        )
        assert vector.name == name
        assert vector.checkpoints, f"{name} recorded no checkpoints"
        assert vector.terminal[0] >= len(vector.checkpoints) * vector.cadence


def test_golden_table_matches_perf_baselines():
    # The corpus table and the bench-harness constants pin the same
    # physics; a legitimate change must update both in one PR.
    table = load_golden_digests(CORPUS_DIR)
    assert table["experiment_scale"] == GOLDEN_EXPERIMENT_SCALE
    assert table["fleet"] == GOLDEN_FLEET_DIGESTS
    assert table["experiments"] == GOLDEN_EXPERIMENT_DIGESTS


def test_missing_vector_is_reported_with_remedy(tmp_path):
    problems = check_corpus(
        str(tmp_path), scenarios=["kernel-churn-s3"], golden=False
    )
    assert len(problems) == 1
    assert "no committed vector" in problems[0]
    assert "repro conformance record" in problems[0]
