"""Differential replay: current-vs-seed equivalence, plus report shape."""

import pytest

from repro.conformance import registry
from repro.conformance.runner import run_differential
from repro.conformance.scenarios import (
    ReferenceImpl,
    default_scenarios,
)

_SCRIPTED = [
    name
    for family in ("kernel", "ml", "workloads")
    for name in default_scenarios(family)
]


@pytest.mark.parametrize("scenario", _SCRIPTED)
def test_current_and_seed_impls_are_bit_identical(scenario):
    family = scenario.split("-")[0]
    report = run_differential(
        f"{family}:current", f"{family}:seed", scenario
    )
    assert report.equivalent, report.render()
    assert report.first_diverging_index is None
    assert report.terminal_equal
    assert report.n_events[f"{family}:current"] > 0
    assert (
        report.n_events[f"{family}:current"]
        == report.n_events[f"{family}:seed"]
    )


def test_family_mismatch_is_rejected():
    with pytest.raises(ValueError, match="family"):
        run_differential("ml:current", "ml:seed", "kernel-churn-s3")


def test_terminal_only_divergence_is_reported():
    # Two impls with identical traces but different terminal states:
    # the report must carry the keyed diff and no bogus event index.
    base = registry.get("kernel:current")

    def run(spec, sink):
        state = base.run(spec, sink)
        state["puts"] += 1
        return state

    registry.register(ReferenceImpl(
        name="kernel:test-terminal",
        family="kernel",
        description="identical trace, shifted terminal counter",
        run=run,
    ))
    try:
        report = run_differential(
            "kernel:current", "kernel:test-terminal", "kernel-churn-s3"
        )
    finally:
        registry.unregister("kernel:test-terminal")
    assert not report.equivalent
    assert report.first_diverging_index is None
    assert not report.terminal_equal
    assert "puts" in report.terminal_diff
    assert "terminal state differences" in report.render()


def test_nondeterministic_impl_is_called_out():
    # An impl that diverges at the digest level but replays differently
    # the second time must raise, not report a bogus index.
    base = registry.get("kernel:current")
    runs = [0]

    def run(spec, sink):
        runs[0] += 1
        if runs[0] == 1 and sink is not None:
            sink.on_event(0, b"phantom-event")
        return base.run(spec, sink)

    registry.register(ReferenceImpl(
        name="kernel:test-flaky",
        family="kernel",
        description="emits a phantom event on its first run only",
        run=run,
    ))
    try:
        with pytest.raises(RuntimeError, match="non-deterministic"):
            run_differential(
                "kernel:current", "kernel:test-flaky", "kernel-churn-s3"
            )
    finally:
        registry.unregister("kernel:test-flaky")
