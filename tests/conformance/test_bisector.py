"""The bisector must localize the exact first diverging event.

Unit tests pin the binary search itself; the integration tests inject a
single deliberate perturbation into a live implementation — an
off-by-one RNG draw in the agent stack, a corrupted queue item in the
kernel script — and assert the differential runner reports exactly the
index a full-capture linear scan finds.
"""

import types

import pytest

import repro.sim as live_kernel
from repro.conformance import registry
from repro.conformance.bisector import first_divergence, prefix_digests
from repro.conformance.runner import run_differential
from repro.conformance.scenarios import (
    ReferenceImpl,
    make_scripted_impl,
    run_agent_node,
)
from repro.sim.trace import WindowRecorder


# -- unit: first_divergence ---------------------------------------------------


def test_identical_streams_have_no_divergence():
    stream = [b"a", b"bb", b"ccc"]
    assert first_divergence(stream, list(stream)) is None
    assert first_divergence([], []) is None


@pytest.mark.parametrize("index", range(5))
def test_single_payload_difference_is_found_at_every_index(index):
    a = [b"x%d" % i for i in range(5)]
    b = list(a)
    b[index] = b"DIFF"
    assert first_divergence(a, b) == index


def test_strict_prefix_diverges_at_the_shorter_length():
    a = [b"a", b"b", b"c"]
    assert first_divergence(a, a[:2]) == 2
    assert first_divergence(a[:2], a) == 2
    assert first_divergence([], a) == 0


def test_divergence_then_reagreement_still_reports_the_first():
    a = [b"a", b"b", b"c", b"d"]
    b = [b"a", b"X", b"c", b"d"]  # re-agrees after index 1
    assert first_divergence(a, b) == 1


def test_boundary_shift_is_a_divergence():
    # Same concatenation, different event boundaries — the length
    # prefix in the digest must tell them apart.
    assert first_divergence([b"ab", b"c"], [b"a", b"bc"]) == 0


def test_prefix_digests_are_cumulative():
    digests = prefix_digests([b"a", b"b"])
    assert len(digests) == 3
    assert digests[0] == prefix_digests([])[0]
    assert digests[1] == prefix_digests([b"a"])[1]


def _linear_scan_first_divergence(a, b):
    for i in range(min(len(a), len(b))):
        if a[i] != b[i]:
            return i
    return None if len(a) == len(b) else min(len(a), len(b))


# -- integration: perturbed implementations -----------------------------------


def _capture_full(impl_name, scenario_name):
    from repro.conformance.scenarios import get_scenario

    recorder = WindowRecorder(0, None)
    registry.get(impl_name).run(get_scenario(scenario_name), recorder)
    return recorder.payloads()


@pytest.fixture
def perturbed_agent():
    """``agent:current`` plus one extra draw from the agent RNG stream."""

    def run(spec, sink):
        return run_agent_node(
            spec,
            sink,
            prepare=lambda node: node.streams.get("agent").random(),
        )

    registry.register(ReferenceImpl(
        name="agent:test-perturbed",
        family="agent",
        description="agent stack with one burned agent-RNG draw",
        run=run,
    ))
    yield "agent:test-perturbed"
    registry.unregister("agent:test-perturbed")


def test_off_by_one_rng_draw_is_localized_to_first_event(perturbed_agent):
    scenario = "agent-overclock-objectstore-s7"
    truth = _linear_scan_first_divergence(
        _capture_full("agent:current", scenario),
        _capture_full(perturbed_agent, scenario),
    )
    assert truth is not None  # the perturbation must actually diverge

    report = run_differential("agent:current", perturbed_agent, scenario)
    assert not report.equivalent
    assert report.first_diverging_index == truth
    assert report.event_a is not None and report.event_b is not None
    assert report.event_a != report.event_b
    # The report names the responsible agent and sim-time on both sides.
    for event in (report.event_a, report.event_b):
        assert {"time_us", "kind", "agent", "details"} <= set(event)


@pytest.fixture
def corrupted_kernel():
    """``kernel:current`` whose 37th queue put delivers a corrupted item."""

    def factory():
        puts = [0]

        class CorruptedQueue(live_kernel.SimQueue):
            def put(self, item):
                puts[0] += 1
                if puts[0] == 37:
                    item = (item[0], item[1] + 1_000_000)
                return super().put(item)

        return types.SimpleNamespace(
            Kernel=live_kernel.Kernel,
            SimQueue=CorruptedQueue,
            QUEUE_TIMEOUT=live_kernel.QUEUE_TIMEOUT,
        )

    registry.register(make_scripted_impl(
        "kernel:test-corrupted", "kernel", factory,
        "live kernel with one corrupted queue item",
    ))
    yield "kernel:test-corrupted"
    registry.unregister("kernel:test-corrupted")


def test_corrupted_queue_item_is_localized(corrupted_kernel):
    scenario = "kernel-churn-s3"
    truth = _linear_scan_first_divergence(
        _capture_full("kernel:current", scenario),
        _capture_full(corrupted_kernel, scenario),
    )
    assert truth is not None

    report = run_differential("kernel:current", corrupted_kernel, scenario)
    assert not report.equivalent
    assert report.first_diverging_index == truth
    # The corruption only changes one payload's details, so the event
    # where it surfaces is the consumer observing the poisoned item.
    assert report.event_b["kind"] == "queue.got"
    assert report.event_a["details"] != report.event_b["details"]
