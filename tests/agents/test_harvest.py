"""SmartHarvest agent tests: harvesting, safeguards, QoS protection."""

import numpy as np
import pytest

from repro.agents.harvest import HarvestConfig, SmartHarvestAgent
from repro.agents.harvest.model import UsageWindow
from repro.core import SafeguardPolicy
from repro.node.faults import DelayInjector, ModelBreaker, stuck_usage_injector
from repro.node.hypervisor import Hypervisor
from repro.sim import Kernel, RngStreams
from repro.sim.units import MS, SEC
from repro.workloads.tailbench import IMAGE_DNN, MOSES, TailBenchWorkload


def setup(seed=0, profile=MOSES):
    kernel = Kernel()
    streams = RngStreams(seed)
    hv = Hypervisor(kernel, n_cores=8, history_horizon_us=SEC)
    wl = TailBenchWorkload(kernel, hv, streams.get("wl"), profile).start()
    return kernel, streams, hv, wl


def test_agent_harvests_idle_cores_without_hurting_p99():
    kernel, streams, hv, wl = setup()
    baseline_kernel, bstreams, bhv, bwl = setup()
    SmartHarvestAgent(kernel, hv, streams.get("agent")).start()
    kernel.run(until=120 * SEC)
    baseline_kernel.run(until=120 * SEC)
    harvested = hv.snapshot().elastic_cus / 1e6
    assert harvested > 100  # meaningful elastic capacity (core-seconds)
    p99 = wl.performance().value
    p99_baseline = bwl.performance().value
    assert p99 <= p99_baseline * 1.10  # the paper's acceptable envelope


def test_validation_rejects_out_of_range_and_capped_windows():
    kernel, streams, hv, _wl = setup()
    agent = SmartHarvestAgent(kernel, hv, streams.get("agent"))
    model = agent.model
    good = UsageWindow(
        samples=np.full(500, 2.0), allocated=8.0, deficit_cus=0.0
    )
    assert model.validate_data(good)
    out_of_range = UsageWindow(
        samples=np.full(500, -1.0), allocated=8.0, deficit_cus=0.0
    )
    assert not model.validate_data(out_of_range)
    capped = UsageWindow(
        samples=np.full(500, 5.0), allocated=5.0, deficit_cus=0.0
    )
    assert not model.validate_data(capped)
    empty = UsageWindow(
        samples=np.zeros(0), allocated=8.0, deficit_cus=0.0
    )
    assert not model.validate_data(empty)


def test_stuck_counter_discarded_by_validation():
    kernel, streams, hv, _wl = setup()
    agent = SmartHarvestAgent(kernel, hv, streams.get("agent"))
    agent.model.injectors.append(
        stuck_usage_injector(streams.get("fault"), probability=0.5)
    )
    agent.start()
    kernel.run(until=20 * SEC)
    stats = agent.runtime.stats()
    assert stats["validation_failures"] > 100


def test_broken_model_triggers_starvation_assessment():
    kernel, streams, hv, _wl = setup(profile=IMAGE_DNN)
    breaker = ModelBreaker(broken_value=0)  # "the primary needs nothing"
    agent = SmartHarvestAgent(
        kernel, hv, streams.get("agent"), breaker=breaker
    ).start()
    kernel.call_later(30 * SEC, breaker.arm)
    kernel.run(until=90 * SEC)
    stats = agent.runtime.stats()
    assert stats["model_safeguard_triggers"] >= 1
    assert stats["interceptions"] > 0


def test_guarded_broken_model_bounded_impact():
    def run(policy):
        kernel, streams, hv, wl = setup(profile=IMAGE_DNN, seed=3)
        breaker = ModelBreaker(broken_value=0)
        breaker.arm()
        SmartHarvestAgent(
            kernel, hv, streams.get("agent"), policy=policy, breaker=breaker
        ).start()
        kernel.run(until=120 * SEC)
        return wl.performance().value

    guarded = run(SafeguardPolicy.all_enabled())
    unguarded = run(SafeguardPolicy.none_enabled())
    assert unguarded > guarded * 1.2


def test_actuator_safeguard_returns_cores_under_sustained_wait():
    kernel, streams, hv, _wl = setup(profile=IMAGE_DNN)
    breaker = ModelBreaker(broken_value=0)
    breaker.arm()
    # model assessment off: only the end-to-end watchdog protects
    agent = SmartHarvestAgent(
        kernel, hv, streams.get("agent"),
        policy=SafeguardPolicy(assess_model=False),
        breaker=breaker,
    ).start()
    kernel.run(until=60 * SEC)
    stats = agent.runtime.stats()
    assert stats["actuator_safeguard_triggers"] >= 1
    assert stats["mitigations"] >= 1


def test_prediction_timeout_returns_all_cores():
    kernel, streams, hv, _wl = setup()
    delays = DelayInjector()
    delays.add_window(at_us=10 * SEC, duration_us=20 * SEC)
    agent = SmartHarvestAgent(
        kernel, hv, streams.get("agent"), model_delays=delays
    ).start()
    kernel.run(until=15 * SEC)  # inside the stall
    assert hv.harvested == 0
    assert agent.runtime.stats()["actuation_timeouts"] >= 1


def test_harvest_ramps_slowly_but_returns_instantly():
    kernel, streams, hv, _wl = setup()
    agent = SmartHarvestAgent(kernel, hv, streams.get("agent"))
    actuator = agent.actuator
    from repro.core.prediction import Prediction

    # predicted need 1 core -> target harvest 6, but ramp is 1/action
    actuator.take_action(Prediction.fresh(kernel, 1, ttl_us=SEC))
    assert hv.harvested == 1
    actuator.take_action(Prediction.fresh(kernel, 1, ttl_us=SEC))
    assert hv.harvested == 2
    # demand spike: predicted need 7 -> instant release
    actuator.take_action(Prediction.fresh(kernel, 7, ttl_us=SEC))
    assert hv.harvested == 0


def test_terminate_returns_all_cores():
    kernel, streams, hv, _wl = setup()
    agent = SmartHarvestAgent(kernel, hv, streams.get("agent")).start()
    kernel.run(until=30 * SEC)
    agent.terminate()
    assert hv.harvested == 0
    assert not agent.runtime.running


def test_config_validation():
    with pytest.raises(ValueError):
        HarvestConfig(sample_period_us=0)
    with pytest.raises(ValueError):
        HarvestConfig(epoch_us=25 * MS + 1)  # not a multiple of 50us
    with pytest.raises(ValueError):
        HarvestConfig(buffer_cores=-1)
    with pytest.raises(ValueError):
        HarvestConfig(starvation_threshold=0.0)
    assert HarvestConfig().samples_per_epoch == 500
