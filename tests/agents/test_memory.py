"""SmartMemory agent tests: classification, bandits, safeguards."""

import numpy as np
import pytest

from repro.agents.memory import (
    MemoryConfig,
    MemoryPlan,
    SmartMemoryAgent,
    StaticScanController,
    classify_by_coverage,
    infer_access_rate,
    observable_rate,
)
from repro.core import SafeguardPolicy
from repro.node.memory import Tier, TieredMemory
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.traces import SPECJBB_MEM, ZipfMemoryTrace


def setup(seed=0, n_regions=64, profile=SPECJBB_MEM):
    kernel = Kernel()
    streams = RngStreams(seed)
    memory = TieredMemory(
        kernel, n_regions=n_regions, pages_per_region=512,
        rng=streams.get("mem"),
    )
    trace = ZipfMemoryTrace(kernel, memory, streams.get("trace"), profile)
    trace.start()
    return kernel, streams, memory, trace


# -- classification math ------------------------------------------------------


def test_classify_by_coverage_minimal_hot_set():
    counts = np.array([100.0, 50.0, 30.0, 10.0, 5.0, 5.0])
    hot, warm = classify_by_coverage(
        counts, np.arange(6), coverage=0.8
    )
    # 100+50+30 = 180 of 200 -> 90% >= 80%; 100+50 = 75% not enough
    assert set(hot.tolist()) == {0, 1, 2}
    assert set(warm.tolist()) == {3, 4, 5}


def test_classify_all_zero_counts_keeps_everything_hot():
    hot, warm = classify_by_coverage(
        np.zeros(4), np.arange(4), coverage=0.8
    )
    assert hot.size == 4
    assert warm.size == 0


def test_classify_respects_candidate_subset():
    counts = np.array([100.0, 90.0, 1.0, 1.0])
    hot, warm = classify_by_coverage(
        counts, np.array([2, 3]), coverage=0.5
    )
    assert set(hot.tolist()) <= {2, 3}


def test_occupancy_inversion_round_trips():
    for rate in [50.0, 500.0, 5000.0]:
        for period in [300_000, 2_400_000]:
            observed = observable_rate(rate, period, 512)
            bits_per_scan = observed * period / 1e6
            recovered = infer_access_rate(bits_per_scan, period, 512)
            if bits_per_scan < 0.98 * 512:
                assert recovered == pytest.approx(rate, rel=1e-6)


def test_inversion_saturates_to_lower_bound():
    recovered = infer_access_rate(512.0, 9_600_000, 512)
    assert recovered < 50_000  # clamped: true rate could be anything higher


def test_memory_plan_rejects_overlaps():
    with pytest.raises(ValueError):
        MemoryPlan(hot=np.array([1, 2]), warm=np.array([2, 3]))


# -- agent behavior ----------------------------------------------------------------


def test_agent_offloads_cold_tail_and_meets_slo():
    kernel, streams, memory, _trace = setup()
    SmartMemoryAgent(kernel, memory, streams.get("agent")).start()
    kernel.run(until=300 * SEC)
    snap = memory.snapshot()
    assert memory.n_local < memory.n_regions  # something was offloaded
    assert snap.remote_fraction() < 0.30


def test_agent_scans_less_than_max_frequency_baseline():
    kernel, streams, memory, _trace = setup(seed=1)
    SmartMemoryAgent(kernel, memory, streams.get("agent")).start()
    kernel.run(until=300 * SEC)
    smart_resets = memory.snapshot().bit_resets

    kernel2, streams2, memory2, _trace2 = setup(seed=1)
    StaticScanController(
        kernel2, memory2, MemoryConfig().scan_periods_us[0]
    ).start()
    kernel2.run(until=300 * SEC)
    max_resets = memory2.snapshot().bit_resets
    assert smart_resets < max_resets


def test_bandits_move_cold_regions_to_slow_arms():
    kernel, streams, memory, _trace = setup(seed=2)
    agent = SmartMemoryAgent(kernel, memory, streams.get("agent")).start()
    kernel.run(until=400 * SEC)
    periods = agent.model.chosen_periods_us()
    rates = memory.rates
    active = rates > 0
    quiet = ~active & ~np.isin(
        np.arange(memory.n_regions), agent.model.cold_regions
    )
    hot_idx = np.argsort(rates)[-5:]
    # hottest regions scan much faster than the overall mix
    assert periods[hot_idx].mean() < np.asarray(periods).mean()


def test_cold_regions_detected_and_excluded():
    kernel, streams, memory, _trace = setup(seed=3)
    agent = SmartMemoryAgent(kernel, memory, streams.get("agent")).start()
    kernel.run(until=400 * SEC)  # > 3 min cold timeout
    cold = agent.model.cold_regions
    rates = memory.rates
    assert cold.size > 0
    assert np.all(rates[cold] == 0.0)


def test_scan_errors_fail_validation_sample():
    kernel, streams, memory, _trace = setup(seed=4)
    memory.set_scan_fault_probability(1.0)
    agent = SmartMemoryAgent(kernel, memory, streams.get("agent")).start()
    kernel.run(until=50 * SEC)
    stats = agent.runtime.stats()
    assert stats["validation_failures"] > 0


def test_actuator_safeguard_migrates_hot_regions_back():
    kernel, streams, memory, _trace = setup(seed=5)
    agent = SmartMemoryAgent(kernel, memory, streams.get("agent")).start()
    kernel.run(until=80 * SEC)  # past the first plan application
    # adversarially push the hottest regions remote
    hottest = np.argsort(memory.rates)[-10:]
    memory.migrate_many(hottest.tolist(), Tier.REMOTE)
    kernel.run(until=120 * SEC)
    stats = agent.runtime.stats()
    assert stats["actuator_safeguard_triggers"] >= 1
    assert stats["mitigations"] >= 1
    # the hottest regions are back in tier 1
    back_local = sum(memory.tier_of(int(r)) is Tier.LOCAL for r in hottest)
    assert back_local >= 8


def test_default_plan_is_conservative():
    kernel, streams, memory, _trace = setup(seed=6)
    agent = SmartMemoryAgent(kernel, memory, streams.get("agent")).start()
    kernel.run(until=80 * SEC)
    default = agent.model.default_predict()
    plan = default.value
    candidates = plan.hot.size + plan.warm.size
    # only the coldest ~5% of candidate batches are offload candidates
    assert plan.warm.size <= max(1, int(0.06 * candidates))
    assert default.is_default


def test_terminate_restores_all_regions_local():
    kernel, streams, memory, _trace = setup(seed=7)
    agent = SmartMemoryAgent(kernel, memory, streams.get("agent")).start()
    kernel.run(until=200 * SEC)
    agent.terminate()
    assert memory.n_local == memory.n_regions
    assert not agent.runtime.running


def test_config_validation():
    with pytest.raises(ValueError):
        MemoryConfig(scan_periods_us=(300_000,))
    with pytest.raises(ValueError):
        MemoryConfig(scan_periods_us=(300_000, 300_000))
    with pytest.raises(ValueError):
        MemoryConfig(hot_coverage=0.0)
    with pytest.raises(ValueError):
        MemoryConfig(truth_fraction=1.0)
    config = MemoryConfig()
    assert config.epoch_us == 4 * config.scan_periods_us[-1]
