"""SmartOverclock agent tests: learning, safeguards, cleanup."""

import pytest

from repro.agents.overclock import OverclockConfig, SmartOverclockAgent
from repro.core import EventKind, SafeguardPolicy
from repro.node.cpu import CpuModel
from repro.node.faults import DelayInjector, ModelBreaker, bad_ips_injector
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.diskspeed import DiskSpeedWorkload
from repro.workloads.objectstore import ObjectStoreWorkload
from repro.workloads.synthetic import SyntheticBatchWorkload


def make_node(seed=0):
    kernel = Kernel()
    streams = RngStreams(seed)
    cpu = CpuModel(
        kernel, n_cores=8, nominal_freq_ghz=1.5, min_freq_ghz=1.5,
        max_freq_ghz=2.3, max_ipc=4.0,
    )
    return kernel, streams, cpu


def test_learns_to_overclock_cpu_bound_workload():
    kernel, streams, cpu = make_node()
    ObjectStoreWorkload(kernel, cpu, streams.get("wl")).start()
    agent = SmartOverclockAgent(kernel, cpu, streams.get("agent")).start()
    kernel.run(until=300 * SEC)
    # Late in the run, the policy should be at an overclocked frequency
    # most of the time: check the greedy choice for the busy state.
    policy = agent.model.learner.greedy_policy()
    busy_states = [s for s in policy if s[0] >= 3]
    assert busy_states, "agent never saw a busy state"
    assert all(policy[s] > 0 for s in busy_states)


def test_keeps_disk_bound_workload_at_nominal():
    kernel, streams, cpu = make_node()
    DiskSpeedWorkload(kernel, cpu, streams.get("wl")).start()
    agent = SmartOverclockAgent(kernel, cpu, streams.get("agent")).start()
    kernel.run(until=300 * SEC)
    snap = cpu.snapshot()
    # power should be near the nominal baseline (within exploration cost)
    nominal_watts = cpu.power_model.watts(8, 1.5, 0.6)
    assert snap.energy_joules / 300 < nominal_watts * 1.15


def test_validation_discards_out_of_range_ips():
    kernel, streams, cpu = make_node()
    SyntheticBatchWorkload(kernel, cpu, period_us=30 * SEC).start()
    agent = SmartOverclockAgent(kernel, cpu, streams.get("agent"))
    agent.reader.add_injector(
        bad_ips_injector(streams.get("fault"), probability=0.3)
    )
    agent.start()
    kernel.run(until=60 * SEC)
    stats = agent.runtime.stats()
    assert stats["validation_failures"] > 50
    # committed data is all in range
    assert all(
        0 <= m.ips <= 8 * 4 * 2.3 * 1.05
        for m in agent.model._epoch_buffer
    )


def test_model_safeguard_intercepts_broken_model_on_diskspeed():
    kernel, streams, cpu = make_node()
    DiskSpeedWorkload(kernel, cpu, streams.get("wl")).start()
    breaker = ModelBreaker(broken_value=2.3)
    agent = SmartOverclockAgent(
        kernel, cpu, streams.get("agent"), breaker=breaker
    ).start()
    kernel.call_later(60 * SEC, breaker.arm)
    kernel.run(until=240 * SEC)
    stats = agent.runtime.stats()
    assert stats["model_safeguard_triggers"] >= 1
    assert stats["interceptions"] > 10
    # while intercepted, the executed frequency is mostly nominal
    assert cpu.frequency_ghz in (1.5, 1.9, 2.3)


def test_broken_model_unguarded_burns_power():
    def run(policy):
        kernel, streams, cpu = make_node()
        DiskSpeedWorkload(kernel, cpu, streams.get("wl")).start()
        breaker = ModelBreaker(broken_value=2.3)
        breaker.arm()
        SmartOverclockAgent(
            kernel, cpu, streams.get("agent"), policy=policy,
            breaker=breaker,
        ).start()
        kernel.run(until=120 * SEC)
        return cpu.snapshot().energy_joules

    unguarded = run(SafeguardPolicy.none_enabled())
    guarded = run(SafeguardPolicy.all_enabled())
    assert unguarded > guarded * 1.3


def test_actuator_times_out_to_nominal_during_model_stall():
    kernel, streams, cpu = make_node()
    SyntheticBatchWorkload(kernel, cpu, period_us=30 * SEC).start()
    delays = DelayInjector()
    delays.add_window(at_us=20 * SEC, duration_us=60 * SEC)
    agent = SmartOverclockAgent(
        kernel, cpu, streams.get("agent"), model_delays=delays
    ).start()
    kernel.run(until=60 * SEC)
    # deep into the stall, frequency must have been restored to nominal
    assert cpu.frequency_ghz == pytest.approx(1.5)
    assert agent.runtime.stats()["actuation_timeouts"] >= 3


def test_alpha_safeguard_disables_overclocking_when_idle():
    kernel, streams, cpu = make_node()
    # Workload: busy 60 s, then idle for a long time.
    wl = SyntheticBatchWorkload(
        kernel, cpu, period_us=1000 * SEC, n_batches=1,
        batch_giga_instructions=48.0 * 60,
    ).start()
    agent = SmartOverclockAgent(kernel, cpu, streams.get("agent")).start()
    kernel.run(until=400 * SEC)
    stats = agent.runtime.stats()
    assert stats["actuator_safeguard_triggers"] >= 1
    assert cpu.frequency_ghz == pytest.approx(1.5)
    assert agent.runtime.actuator_safeguard.active


def test_terminate_restores_nominal_frequency():
    kernel, streams, cpu = make_node()
    ObjectStoreWorkload(kernel, cpu, streams.get("wl")).start()
    agent = SmartOverclockAgent(kernel, cpu, streams.get("agent")).start()
    kernel.run(until=120 * SEC)
    agent.terminate()
    assert cpu.frequency_ghz == pytest.approx(1.5)
    assert not agent.runtime.running
    cleanup = agent.runtime.log.last(EventKind.CLEANUP)
    assert cleanup is not None


def test_config_validation():
    with pytest.raises(ValueError):
        OverclockConfig(frequencies_ghz=(1.5,))
    with pytest.raises(ValueError):
        OverclockConfig(frequencies_ghz=(1.5, 1.5))
    with pytest.raises(ValueError):
        OverclockConfig(epsilon=1.2)
