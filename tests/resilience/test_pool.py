"""The supervised pool: dispatch, liveness, targeted kill, isolation.

These tests run real worker processes; every scenario is kept tiny so
the module stays in test-suite budget.  The crash scenarios are the
load-bearing ones: a worker dying at an arbitrary moment must never
wedge the pool (per-worker event pipes — a dead worker can only tear
its own channel, see ``repro.resilience.pool``).
"""

import os
import time

import pytest

from repro.resilience import SupervisedPool


def _square(payload):
    return payload * payload


def _boom(payload):
    raise RuntimeError(f"boom {payload}")


def _exit_hard(payload):
    os._exit(9)


def _nap(payload):
    time.sleep(payload)
    return payload


def _poll_until(pool, want, deadline_s=10.0):
    events = []
    deadline = time.monotonic() + deadline_s
    while len(events) < want and time.monotonic() < deadline:
        events.extend(pool.poll(timeout=0.05))
    return events


@pytest.fixture
def pool():
    pool = SupervisedPool(processes=2)
    yield pool
    pool.terminate()


def test_submit_and_poll_round_trip(pool):
    pool.submit(_square, "a", 0, 7, None)
    pool.submit(_square, "b", 0, 8, None)
    assert pool.idle_count() == 0
    events = _poll_until(pool, want=2)
    results = {uid: payload for kind, uid, _a, _w, payload in events}
    assert results == {"a": 49, "b": 64}
    assert all(kind == "done" for kind, *_ in events)
    assert pool.idle_count() == 2


def test_unit_exception_is_an_error_event_not_a_death(pool):
    pool.submit(_boom, "bad", 1, "x", None)
    (event,) = _poll_until(pool, want=1)
    kind, unit_id, attempt, _worker, message = event
    assert (kind, unit_id, attempt) == ("error", "bad", 1)
    assert "RuntimeError: boom x" in message
    assert pool.size == 2  # nobody died
    assert pool.reap_crashed() == []


def test_crashed_worker_is_reaped_with_its_task(pool):
    pool.submit(_exit_hard, "doomed", 0, None, None)
    deadline = time.monotonic() + 10.0
    lost = []
    while not lost and time.monotonic() < deadline:
        pool.poll(timeout=0.05)
        lost = pool.reap_crashed()
    assert lost == [("doomed", 0)]
    # The pool healed: same size, and it still runs work.
    assert len(pool._workers) == 2
    pool.submit(_square, "after", 0, 3, None)
    (event,) = _poll_until(pool, want=1)
    assert event[0] == "done" and event[4] == 9


def test_crash_does_not_wedge_the_surviving_worker(pool):
    """The regression behind the per-worker pipe design: one worker
    dying must never block another worker's event delivery."""
    pool.submit(_exit_hard, "doomed", 0, None, None)
    pool.submit(_nap, "survivor", 0, 0.2, None)
    got = {}
    deadline = time.monotonic() + 10.0
    while "survivor" not in got and time.monotonic() < deadline:
        for kind, uid, _a, _w, payload in pool.poll(timeout=0.05):
            got[uid] = (kind, payload)
        pool.reap_crashed()
    assert got["survivor"] == ("done", 0.2)


def test_kill_task_only_hits_its_own_unit(pool):
    pool.submit(_nap, "stuck", 0, 60.0, None)
    pool.submit(_nap, "fine", 0, 0.2, None)
    assert pool.kill_task("stuck") is True
    events = _poll_until(pool, want=1)
    assert [(e[0], e[1]) for e in events] == [("done", "fine")]
    assert pool.kill_task("stuck") is False  # already gone
    assert len(pool._workers) == 2


def test_dead_idle_worker_is_replaced_silently(pool):
    pool.submit(_square, "a", 0, 2, None)
    _poll_until(pool, want=1)
    victim = next(iter(pool._workers.values()))
    victim.process.terminate()
    victim.process.join(timeout=5.0)
    assert pool.reap_crashed() == []  # idle death loses no task
    assert len(pool._workers) == 2


def test_completed_event_is_salvaged_from_a_dead_worker(pool):
    """A worker that finished its unit and died before the parent
    polled owes nothing: its event is salvaged, not re-run."""
    pool.submit(_square, "a", 0, 5, None)
    # Wait for the event bytes to land without consuming them, then
    # kill the worker that produced them.
    worker = next(
        w for w in pool._workers.values() if w.task == ("a", 0)
    )
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if worker.event_reader.poll(0.05):
            break
    worker.process.terminate()
    worker.process.join(timeout=5.0)
    assert pool.reap_crashed() == []  # salvaged, not lost
    events = _poll_until(pool, want=1)
    assert [(e[0], e[1], e[4]) for e in events] == [("done", "a", 25)]


def test_terminate_is_idempotent_and_kills_workers():
    pool = SupervisedPool(processes=2)
    processes = [w.process for w in pool._workers.values()]
    pool.terminate()
    pool.terminate()
    assert all(not p.is_alive() for p in processes)
    assert pool._workers == {}


def test_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        SupervisedPool(processes=0)
