"""The quarantine log: persistence, merging, memory-only fallback."""

import json
import os

from repro.resilience import QuarantineLog, QuarantineRecord


def _record(unit_id="u1", kind="crash", attempts=3):
    return QuarantineRecord(
        unit_id=unit_id, context="test", kind=kind, attempts=attempts
    )


def test_memory_only_log_records_without_disk():
    log = QuarantineLog()
    log.record(_record())
    assert log.path is None
    assert [r.unit_id for r in log.load()] == ["u1"]


def test_records_persist_and_merge_on_disk(tmp_path):
    directory = str(tmp_path / "quarantine")
    first = QuarantineLog(directory=directory)
    first.record(_record("unit/a"))
    # A separate log instance (a later process) merges, not truncates.
    second = QuarantineLog(directory=directory)
    second.record(_record("unit/b", kind="timeout", attempts=2))
    loaded = QuarantineLog(directory=directory).load()
    assert sorted(r.unit_id for r in loaded) == ["unit/a", "unit/b"]
    by_id = {r.unit_id: r for r in loaded}
    assert by_id["unit/b"].kind == "timeout"
    assert by_id["unit/b"].attempts == 2
    assert all(r.recorded_at > 0 for r in loaded)


def test_rerecording_a_unit_keeps_one_entry(tmp_path):
    directory = str(tmp_path / "q")
    log = QuarantineLog(directory=directory)
    log.record(_record("u", kind="crash"))
    log.record(_record("u", kind="timeout"))
    loaded = QuarantineLog(directory=directory).load()
    assert len(loaded) == 1
    assert loaded[0].kind == "timeout"  # last writer wins


def test_corrupt_log_degrades_to_empty(tmp_path):
    directory = str(tmp_path / "q")
    os.makedirs(directory)
    with open(os.path.join(directory, "units.json"), "w") as handle:
        handle.write("{broken")
    log = QuarantineLog(directory=directory)
    assert log.load() == []
    log.record(_record())  # and recording over it recovers the file
    with open(log.path) as handle:
        assert json.load(handle)[0]["unit_id"] == "u1"


def test_concurrent_processes_lose_no_records(tmp_path):
    """Two real processes × 25 distinct units → all 50 records survive.

    Pins the FileLock around read→merge→replace: without it the two
    writers race on the same snapshot and the later ``os.replace``
    silently erases the earlier process's merges (lost update).
    """
    import subprocess
    import sys

    directory = str(tmp_path / "q")
    script = (
        "import sys\n"
        "from repro.resilience import QuarantineLog, QuarantineRecord\n"
        "directory, prefix = sys.argv[1], sys.argv[2]\n"
        "log = QuarantineLog(directory=directory)\n"
        "for i in range(25):\n"
        "    log.record(QuarantineRecord(\n"
        "        unit_id=f'{prefix}/{i:02d}', context='mp',\n"
        "        kind='crash', attempts=1,\n"
        "    ))\n"
    )
    env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, directory, prefix], env=env
        )
        for prefix in ("alpha", "beta")
    ]
    for proc in procs:
        assert proc.wait(timeout=60) == 0
    loaded = QuarantineLog(directory=directory).load()
    expected = sorted(
        f"{prefix}/{i:02d}"
        for prefix in ("alpha", "beta") for i in range(25)
    )
    assert sorted(r.unit_id for r in loaded) == expected
