"""The ``repro chaos`` command line and the interrupt exit path."""

import pytest

from repro import cli
from repro.cli import main

SPEC = """
name = "chaos-cli"
agents = ["overclock"]
scales = [2]
seeds = [0]
duration_s = 10
rack_size = 1

[[fault]]
kind = "bad_data"
intensities = [0.9]
start_s = 2
duration_s = 5
racks = [0]
"""


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "chaos.toml"
    path.write_text(SPEC)
    return str(path)


def test_chaos_fleet_crash_recovers_bit_identically(capsys):
    code = main([
        "chaos", "fleet", "--fault", "crash", "--probability", "1.0",
        "--nodes", "4", "--seconds", "10", "--workers", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "chaos: OK" in out and "0 hole(s)" in out


def test_chaos_sweep_poison_cell_reports_the_exact_hole(
    capsys, spec_path
):
    poison = "overclock/n2/x10s/seed0/baseline"
    code = main([
        "chaos", "sweep", "--spec", spec_path, "--fault", "crash",
        "--probability", "0.0", "--poison", poison, "--workers", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert f"[quarantined: {poison} (crash after 3 attempts" in out
    assert "1 hole(s), exact" in out


def test_chaos_rejects_incoherent_requests():
    with pytest.raises(SystemExit):
        main(["chaos", "sweep", "--fault", "crash"])  # no --spec
    with pytest.raises(SystemExit):
        main(["chaos", "fleet", "--fault", "corrupt_cache"])
    with pytest.raises(SystemExit):
        main(["chaos", "sweep", "--spec", "x.toml",
              "--fault", "corrupt_cache", "--poison", "u"])


def test_resilience_flags_reach_the_sweep_policy(capsys, spec_path):
    # max-retries=0 + a first-attempt crash on every cell means nothing
    # can recover: both cells must quarantine, and the verdict must
    # fail because the holes were not declared as poison.
    code = main([
        "chaos", "sweep", "--spec", spec_path, "--fault", "crash",
        "--probability", "1.0", "--max-retries", "0", "--workers", "2",
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "after 1 attempts" in captured.out
    assert "CHAOS FAILURE" in captured.err


def test_keyboard_interrupt_exits_130_and_resets_the_pool(monkeypatch):
    from repro.experiments import driver

    def interrupted(args):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "_cmd_fleet", interrupted)
    assert main(["fleet", "--nodes", "2"]) == 130
    assert driver._shared_pool is None
