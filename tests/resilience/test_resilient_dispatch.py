"""End-to-end resilience: every pipeline under injected faults either
reproduces the fault-free digests bit-identically or reports the exact
quarantined units as explicit holes (DESIGN.md §11).

Scales and fleets are deliberately tiny; the properties under test are
structural (digest identity, exact holes), not statistical.
"""

import pytest

from repro.experiments.common import experiment_digest
from repro.experiments.driver import FleetDriver, reproduce_all
from repro.fleet.config import FleetConfig
from repro.resilience import ChaosPlan, QuarantineLog, RetryPolicy
from repro.sweep import CampaignSpec, FaultAxis, SweepRunner

FAST = RetryPolicy(max_retries=2, backoff_base_s=0.01, backoff_cap_s=0.05)
SCALE = 0.05


def _digests(runs):
    return {run.name: experiment_digest(run.result) for run in runs}


# -- fleet -------------------------------------------------------------------


def test_fleet_digest_survives_worker_crashes():
    config = FleetConfig(n_nodes=8, agent="mixed", seed=5, duration_s=10)
    baseline = FleetDriver(config, workers=2).run()
    chaotic = FleetDriver(
        config, workers=2, resilience=FAST,
        chaos=ChaosPlan(kind="crash", probability=1.0),
    ).run()
    assert chaotic.digest() == baseline.digest()
    assert not chaotic.partial and chaotic.holes == ()


def test_fleet_poison_chunk_degrades_to_explicit_node_holes():
    config = FleetConfig(n_nodes=8, agent="overclock", seed=0,
                         duration_s=10)
    driver = FleetDriver(config, workers=2)
    chunks = driver.chunks()
    poison_id = f"chunk000(n{chunks[0][0]}+{len(chunks[0])})"
    log = QuarantineLog()
    driver = FleetDriver(
        config, workers=2, resilience=FAST, quarantine=log,
        chaos=ChaosPlan(kind="crash", poison_units=(poison_id,)),
    )
    aggregate = driver.run()
    assert aggregate.partial
    assert aggregate.holes == tuple(sorted(chunks[0]))
    assert "PARTIAL" in aggregate.render()
    assert [r.unit_id for r in log.load()] == [poison_id]
    # The surviving nodes' results are intact (not zeroed or dropped).
    assert aggregate.n_nodes == config.n_nodes - len(chunks[0])


def test_fleet_aggregate_digest_is_unchanged_without_holes():
    """`holes` must not perturb the committed golden digests: the
    canonical dict only grows the key when holes exist."""
    config = FleetConfig(n_nodes=4, agent="overclock", seed=1,
                         duration_s=10)
    aggregate = FleetDriver(config, workers=1).run()
    assert "holes" not in aggregate.as_dict()


# -- reproduce-all -----------------------------------------------------------


def test_reproduce_all_digests_survive_crash_faults():
    baseline = reproduce_all(only=["fig6-left"], scale=SCALE)
    chaotic = reproduce_all(
        only=["fig6-left"], scale=SCALE, parallel=True, workers=2,
        resilience=FAST, chaos=ChaosPlan(kind="crash", probability=1.0),
    )
    assert _digests(baseline) == _digests(chaotic)
    assert all(not run.partial for run in chaotic)


def test_reproduce_all_poison_unit_yields_partial_artifact():
    poison = f"fig6-left/image-dnn/on@{SCALE!r}"
    log = QuarantineLog()
    runs = reproduce_all(
        only=["fig6-left", "table1"], scale=SCALE, parallel=True,
        workers=2, resilience=FAST, quarantine=log,
        chaos=ChaosPlan(kind="crash", poison_units=(poison,)),
    )
    by_name = {run.name: run for run in runs}
    partial = by_name["fig6-left"]
    assert partial.partial and partial.holes == (poison,)
    assert "PARTIAL" in partial.result.title
    assert [row["unit"] for row in partial.result.rows] == [poison]
    # The other artifact is untouched by its neighbor's poison.
    clean = by_name["table1"]
    assert not clean.partial
    assert _digests([clean]) == _digests(
        reproduce_all(only=["table1"], scale=SCALE)
    )
    assert [r.unit_id for r in log.load()] == [poison]


# -- sweep -------------------------------------------------------------------


def _spec():
    return CampaignSpec(
        name="chaos-e2e",
        agents=("overclock",),
        scales=(2,),
        seeds=(0,),
        duration_s=15,
        rack_size=1,
        faults=(
            FaultAxis(kind="bad_data", intensities=(0.5, 0.9),
                      start_s=3, duration_s=8, racks=(0,)),
        ),
    )


def test_sweep_digest_survives_crash_faults():
    spec = _spec()
    baseline = SweepRunner(spec, workers=2).run()
    chaotic = SweepRunner(
        spec, workers=2, resilience=FAST,
        chaos=ChaosPlan(kind="crash", probability=1.0),
    ).run()
    assert chaotic.digest() == baseline.digest()
    assert not chaotic.partial and chaotic.holes == ()


def test_sweep_poison_cell_is_an_explicit_hole():
    spec = _spec()
    poison = spec.expand()[0].unit_id()
    report = SweepRunner(
        spec, workers=2, resilience=FAST,
        chaos=ChaosPlan(kind="crash", poison_units=(poison,)),
    ).run()
    assert report.partial and report.holes == (poison,)
    assert len(report.records) == len(spec.expand()) - 1
    assert "PARTIAL" in report.render()
    # A fault-free rerun back-fills the hole and matches the clean run.
    clean = SweepRunner(spec, workers=2).run()
    assert not clean.partial
    assert len(clean.records) == len(spec.expand())


def test_sweep_executed_excludes_holes():
    spec = _spec()
    poison = spec.expand()[-1].unit_id()
    report = SweepRunner(
        spec, workers=2, resilience=FAST,
        chaos=ChaosPlan(kind="crash", poison_units=(poison,)),
    ).run()
    assert report.executed == len(spec.expand()) - 1
    assert report.from_cache == 0


# -- interrupt hygiene (satellite: the wedged-pool bug) ----------------------


def test_interrupt_during_dispatch_resets_the_shared_pool():
    from repro.experiments import driver as driver_module

    driver_module.shutdown_shared_pool()

    class Interrupt(BaseException):
        pass

    def interrupt(uid, result):
        raise Interrupt

    from repro.resilience import supervised_map

    with pytest.raises(Interrupt):
        supervised_map(
            _identity, [("u", 1)], workers=2,
            pool_factory=driver_module.shared_pool,
            pool_shutdown=driver_module.shutdown_shared_pool,
            policy=FAST, on_result=interrupt,
        )
    assert driver_module._shared_pool is None  # reset, not wedged
    # And the next dispatch builds a fresh working pool.
    outcome = supervised_map(
        _identity, [("u", 7)], workers=2,
        pool_factory=driver_module.shared_pool,
        pool_shutdown=driver_module.shutdown_shared_pool,
        policy=FAST,
    )
    assert outcome.results == {"u": 7}


def _identity(payload):
    return payload
