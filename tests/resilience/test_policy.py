"""Retry policy: deterministic backoff, bounded attempts, validation."""

import pytest

from repro.resilience import RetryPolicy


def test_backoff_is_deterministic_across_instances():
    one = RetryPolicy(jitter_seed=7)
    two = RetryPolicy(jitter_seed=7)
    for attempt in range(5):
        assert one.backoff_delay("u", attempt) == two.backoff_delay(
            "u", attempt
        )


def test_backoff_grows_exponentially_then_caps():
    policy = RetryPolicy(
        backoff_base_s=0.1, backoff_cap_s=0.4, jitter_frac=0.0
    )
    assert policy.backoff_delay("u", 0) == pytest.approx(0.1)
    assert policy.backoff_delay("u", 1) == pytest.approx(0.2)
    assert policy.backoff_delay("u", 2) == pytest.approx(0.4)
    assert policy.backoff_delay("u", 5) == pytest.approx(0.4)  # capped


def test_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(jitter_frac=0.25)
    draws = {
        (unit, attempt): policy.jitter(unit, attempt)
        for unit in ("a", "b", "c")
        for attempt in range(3)
    }
    assert all(0.0 <= value < 0.25 for value in draws.values())
    assert len(set(draws.values())) > 1  # units draw independent jitter
    reseeded = RetryPolicy(jitter_frac=0.25, jitter_seed=1)
    assert reseeded.jitter("a", 0) != policy.jitter("a", 0)


def test_max_attempts_counts_the_first_run():
    assert RetryPolicy(max_retries=0).max_attempts == 1
    assert RetryPolicy(max_retries=2).max_attempts == 3


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(unit_timeout_s=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base_s=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_frac=1.5)
