"""The chaos harness: seeded selection, the env plan, cache corruption."""

import json

import pytest

from repro.cache import ResultCache
from repro.resilience import ChaosCache, ChaosPlan, active_plan
from repro.resilience.chaos import CHAOS_PLAN_ENV, apply_worker_fault


def test_selection_is_a_pure_function_of_seed_and_unit():
    plan = ChaosPlan(kind="crash", probability=0.5, seed=3)
    again = ChaosPlan(kind="crash", probability=0.5, seed=3)
    units = [f"unit-{i}" for i in range(64)]
    assert [plan.selects(u) for u in units] == [
        again.selects(u) for u in units
    ]
    selected = sum(plan.selects(u) for u in units)
    assert 0 < selected < len(units)  # p=0.5 picks a real subset
    reseeded = ChaosPlan(kind="crash", probability=0.5, seed=4)
    assert [plan.selects(u) for u in units] != [
        reseeded.selects(u) for u in units
    ]


def test_probability_bounds():
    none = ChaosPlan(kind="crash", probability=0.0)
    everything = ChaosPlan(kind="crash", probability=1.0)
    assert not any(none.selects(f"u{i}") for i in range(16))
    assert all(everything.selects(f"u{i}") for i in range(16))
    with pytest.raises(ValueError):
        ChaosPlan(kind="crash", probability=1.5)
    with pytest.raises(ValueError):
        ChaosPlan(kind="sabotage")


def test_faults_fire_on_configured_attempts_only():
    plan = ChaosPlan(kind="crash", probability=1.0)  # attempts (0,)
    assert plan.should_fault("u", 0)
    assert not plan.should_fault("u", 1)  # the retry recovers
    poison = ChaosPlan(kind="crash", poison_units=("u",))
    assert all(poison.should_fault("u", attempt) for attempt in range(5))
    assert not poison.should_fault("other", 0)


def test_plan_round_trips_through_dict():
    plan = ChaosPlan(
        kind="hang", probability=0.25, seed=9,
        fault_attempts=(0, 1), poison_units=("a", "b"), hang_s=12.0,
    )
    assert ChaosPlan.from_dict(plan.to_dict()) == plan


def test_active_plan_reads_the_environment(monkeypatch):
    monkeypatch.delenv(CHAOS_PLAN_ENV, raising=False)
    assert active_plan() is None
    monkeypatch.setenv(
        CHAOS_PLAN_ENV,
        json.dumps({"kind": "crash", "probability": 0.5, "seed": 2}),
    )
    plan = active_plan()
    assert plan == ChaosPlan(kind="crash", probability=0.5, seed=2)
    monkeypatch.setenv(CHAOS_PLAN_ENV, "{broken")
    with pytest.raises(ValueError):
        active_plan()  # a silently-ignored plan would pass vacuously


def test_worker_faults_refuse_to_fire_in_the_main_process():
    plan = ChaosPlan(kind="crash", probability=1.0).to_dict()
    # Would os._exit the test process if the _IN_WORKER guard failed.
    apply_worker_fault(plan, "u", 0)
    apply_worker_fault(None, "u", 0)


def test_chaos_cache_corrupts_selected_writes_only(tmp_path):
    plan = ChaosPlan(kind="corrupt_cache", probability=0.5, seed=1)
    cache = ChaosCache(directory=str(tmp_path), plan=plan)
    keys = [f"{i:02x}" * 32 for i in range(16)]
    for key in keys:
        cache.put(key, {"k": key})
    assert cache.corrupted_keys  # p=0.5 garbled a real subset
    assert set(cache.corrupted_keys) == {
        k for k in keys if plan.selects(k)
    }
    # A fresh plain cache quarantines exactly the garbled objects and
    # serves the rest untouched.
    reader = ResultCache(str(tmp_path))
    for key in keys:
        value = reader.get(key)
        if key in cache.corrupted_keys:
            assert value is None
        else:
            assert value == {"k": key}
    assert reader.stats.corrupt == len(cache.corrupted_keys)


def test_chaos_cache_with_other_fault_kinds_is_transparent(tmp_path):
    plan = ChaosPlan(kind="crash", probability=1.0)
    cache = ChaosCache(directory=str(tmp_path), plan=plan)
    cache.put("aa" * 32, [1])
    assert cache.corrupted_keys == []
    assert ResultCache(str(tmp_path)).get("aa" * 32) == [1]
