"""The supervised dispatcher: retry, quarantine, deadlines, teardown."""

import pytest

from repro.resilience import (
    ChaosPlan,
    QuarantineLog,
    RetryPolicy,
    SupervisedPool,
    supervised_map,
)


def _double(payload):
    return payload * 2


def _boom(payload):
    raise RuntimeError("always fails")


@pytest.fixture
def pool_env():
    """A private pool factory/shutdown pair mimicking the shared pool."""
    state = {}

    def factory(workers):
        if "pool" not in state:
            state["pool"] = SupervisedPool(processes=workers)
        return state["pool"]

    def shutdown():
        pool = state.pop("pool", None)
        if pool is not None:
            pool.terminate()
        state["shutdowns"] = state.get("shutdowns", 0) + 1

    yield factory, shutdown, state
    pool = state.pop("pool", None)
    if pool is not None:
        pool.terminate()


# Fast policy for tests: real backoff semantics, negligible wall time.
FAST = RetryPolicy(max_retries=2, backoff_base_s=0.01, backoff_cap_s=0.05)


def test_plain_dispatch_completes_everything(pool_env):
    factory, shutdown, _ = pool_env
    units = [(f"u{i}", i) for i in range(6)]
    seen = []
    outcome = supervised_map(
        _double, units, workers=2,
        pool_factory=factory, pool_shutdown=shutdown,
        policy=FAST, on_result=lambda uid, res: seen.append(uid),
    )
    assert outcome.results == {f"u{i}": 2 * i for i in range(6)}
    assert sorted(seen) == sorted(u for u, _ in units)
    assert not outcome.partial and outcome.retried == 0


def test_no_units_never_touches_the_pool():
    def poisoned(workers):
        raise AssertionError("empty dispatch requested a pool")

    outcome = supervised_map(
        _double, [], workers=2,
        pool_factory=poisoned, pool_shutdown=lambda: None,
    )
    assert outcome.results == {} and not outcome.partial


def test_duplicate_unit_ids_are_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        supervised_map(
            _double, [("u", 1), ("u", 2)], workers=1,
            pool_factory=lambda w: None, pool_shutdown=lambda: None,
        )


def test_always_failing_unit_is_quarantined_with_history(pool_env):
    factory, shutdown, _ = pool_env
    log = QuarantineLog()
    poisoned = []
    outcome = supervised_map(
        _boom, [("bad", None)], workers=1,
        pool_factory=factory, pool_shutdown=shutdown,
        policy=FAST, quarantine=log,
        on_quarantine=lambda record: poisoned.append(record.unit_id),
        context="test",
    )
    assert outcome.results == {}
    assert outcome.holes == ["bad"] and outcome.partial
    assert outcome.retried == FAST.max_retries
    assert len(outcome.failures) == FAST.max_attempts
    assert all(f.kind == "error" for f in outcome.failures)
    (record,) = log.load()
    assert record.unit_id == "bad" and record.context == "test"
    assert record.attempts == FAST.max_attempts
    assert "always fails" in record.error
    assert poisoned == ["bad"]


def test_crash_fault_is_retried_and_recovered(pool_env):
    factory, shutdown, _ = pool_env
    plan = ChaosPlan(kind="crash", probability=1.0)  # attempt 0 only
    outcome = supervised_map(
        _double, [(f"u{i}", i) for i in range(4)], workers=2,
        pool_factory=factory, pool_shutdown=shutdown,
        policy=FAST, chaos=plan,
    )
    assert outcome.results == {f"u{i}": 2 * i for i in range(4)}
    assert not outcome.partial
    assert outcome.retried == 4
    assert all(f.kind == "crash" for f in outcome.failures)


def test_poison_unit_quarantines_while_the_rest_complete(pool_env):
    factory, shutdown, _ = pool_env
    plan = ChaosPlan(kind="crash", poison_units=("u2",))
    outcome = supervised_map(
        _double, [(f"u{i}", i) for i in range(5)], workers=2,
        pool_factory=factory, pool_shutdown=shutdown,
        policy=FAST, chaos=plan,
    )
    assert outcome.holes == ["u2"]
    assert sorted(outcome.results) == ["u0", "u1", "u3", "u4"]
    (record,) = outcome.quarantined
    assert record.kind == "crash"


def test_hung_unit_is_killed_at_the_deadline(pool_env):
    factory, shutdown, _ = pool_env
    plan = ChaosPlan(kind="hang", poison_units=("stuck",), hang_s=60.0)
    policy = RetryPolicy(
        max_retries=1, unit_timeout_s=0.3,
        backoff_base_s=0.01, backoff_cap_s=0.05,
    )
    outcome = supervised_map(
        _double, [("stuck", 1), ("fine", 2)], workers=2,
        pool_factory=factory, pool_shutdown=shutdown,
        policy=policy, chaos=plan,
    )
    assert outcome.results == {"fine": 4}
    assert outcome.holes == ["stuck"]
    (record,) = outcome.quarantined
    assert record.kind == "timeout"
    assert "deadline" in record.error


def test_escaping_exception_tears_the_pool_down(pool_env):
    factory, shutdown, state = pool_env

    def interrupt(uid, result):
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        supervised_map(
            _double, [("u", 1)], workers=1,
            pool_factory=factory, pool_shutdown=shutdown,
            policy=FAST, on_result=interrupt,
        )
    assert state.get("shutdowns") == 1
    assert "pool" not in state  # the wedged pool was discarded


def _slow(payload):
    import time

    time.sleep(30)
    return payload


def test_preset_cancel_token_stops_dispatch_and_keeps_pool_warm(pool_env):
    import threading

    from repro.resilience import DispatchCancelled

    factory, shutdown, state = pool_env
    cancel = threading.Event()
    cancel.set()
    with pytest.raises(DispatchCancelled):
        supervised_map(
            _double, [("u0", 1), ("u1", 2)], workers=2,
            pool_factory=factory, pool_shutdown=shutdown,
            policy=FAST, cancel=cancel,
        )
    # Cancellation is not a fault: the pool must NOT be torn down (the
    # serve scheduler keeps it warm for the next job).
    assert state.get("shutdowns", 0) == 0
    assert "pool" in state


def test_cancel_mid_dispatch_kills_inflight_units(pool_env):
    import threading

    from repro.resilience import DispatchCancelled

    factory, shutdown, state = pool_env
    cancel = threading.Event()

    def cancel_on_first_dispatch(unit_id, attempt):
        cancel.set()

    with pytest.raises(DispatchCancelled, match="in-flight"):
        supervised_map(
            _slow, [("u0", 1), ("u1", 2)], workers=2,
            pool_factory=factory, pool_shutdown=shutdown,
            policy=FAST, cancel=cancel,
            on_dispatch=cancel_on_first_dispatch,
        )
    assert state.get("shutdowns", 0) == 0  # warm pool preserved
    # the pool is still usable for the next dispatch
    outcome = supervised_map(
        _double, [("u2", 3)], workers=2,
        pool_factory=factory, pool_shutdown=shutdown, policy=FAST,
    )
    assert outcome.results == {"u2": 6}


def test_ambient_cancel_token_is_per_thread(pool_env):
    import threading

    from repro.resilience import (
        DispatchCancelled,
        cancel_token,
        set_cancel_token,
    )

    factory, shutdown, _ = pool_env
    token = threading.Event()
    token.set()
    set_cancel_token(token)
    try:
        assert cancel_token() is token
        with pytest.raises(DispatchCancelled):
            supervised_map(
                _double, [("u0", 1)], workers=2,
                pool_factory=factory, pool_shutdown=shutdown,
                policy=FAST,
            )
    finally:
        set_cancel_token(None)
    assert cancel_token() is None
    # other threads never see this thread's token
    seen = {}
    other = threading.Thread(
        target=lambda: seen.update(token=cancel_token())
    )
    other.start()
    other.join()
    assert seen["token"] is None
