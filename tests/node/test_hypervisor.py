"""Tests for the hypervisor fluid model: wait accounting, sampling, harvest."""

import numpy as np
import pytest

from repro.node.hypervisor import Hypervisor
from repro.sim import Kernel, RngStreams
from repro.sim.units import MS, SEC


def test_initially_all_cores_allocated_no_deficit():
    hv = Hypervisor(Kernel(), n_cores=8)
    assert hv.allocated == 8
    assert hv.harvested == 0
    assert hv.deficit == 0.0


def test_usage_is_min_of_demand_and_allocation():
    hv = Hypervisor(Kernel(), n_cores=8)
    hv.set_demand(3.0)
    assert hv.usage == 3.0
    hv.set_harvested(6)  # leaves 2 cores
    assert hv.usage == 2.0
    assert hv.deficit == pytest.approx(1.0)


def test_wait_time_accrues_only_while_starved():
    kernel = Kernel()
    hv = Hypervisor(kernel, n_cores=4)
    hv.set_demand(2.0)
    kernel.run(until=1 * SEC)          # satisfied: no deficit
    hv.set_harvested(3)                # leaves 1 core, deficit 1
    kernel.run(until=3 * SEC)          # 2 s of deficit 1
    hv.return_all_cores()
    kernel.run(until=5 * SEC)
    snap = hv.snapshot()
    assert snap.wait_seconds() == pytest.approx(2.0)


def test_elastic_usage_tracks_harvested_cores():
    kernel = Kernel()
    hv = Hypervisor(kernel, n_cores=8)
    hv.set_harvested(5)
    kernel.run(until=2 * SEC)
    snap = hv.snapshot()
    assert snap.elastic_cus == pytest.approx(5 * 2 * SEC)


def test_demand_clamped_to_physical_cores():
    hv = Hypervisor(Kernel(), n_cores=4)
    hv.set_demand(100.0)
    assert hv.demand == 4.0


def test_harvest_request_clamped():
    hv = Hypervisor(Kernel(), n_cores=4)
    assert hv.set_harvested(10) == 4
    assert hv.set_harvested(-3) == 0


def test_sample_usage_reconstructs_piecewise_demand():
    kernel = Kernel()
    hv = Hypervisor(kernel, n_cores=8, history_horizon_us=SEC)
    hv.set_demand(2.0)
    kernel.run(until=10 * MS)
    hv.set_demand(6.0)
    kernel.run(until=20 * MS)
    samples = hv.sample_usage(window_us=20 * MS, period_us=1 * MS)
    assert samples.size == 20
    assert samples[:10] == pytest.approx(np.full(10, 2.0))
    assert samples[10:] == pytest.approx(np.full(10, 6.0))


def test_sample_usage_respects_allocation_cap():
    kernel = Kernel()
    hv = Hypervisor(kernel, n_cores=8, history_horizon_us=SEC)
    hv.set_demand(8.0)
    hv.set_harvested(5)  # allocation = 3
    kernel.run(until=25 * MS)
    samples = hv.sample_usage(window_us=25 * MS, period_us=1 * MS)
    assert samples.max() == pytest.approx(3.0)


def test_sample_usage_noise_is_clipped_and_reproducible():
    kernel = Kernel()
    hv = Hypervisor(kernel, n_cores=8, history_horizon_us=SEC)
    hv.set_demand(4.0)
    kernel.run(until=25 * MS)
    rng_a = RngStreams(9).get("samples")
    rng_b = RngStreams(9).get("samples")
    a = hv.sample_usage(25 * MS, 1 * MS, rng=rng_a, noise_cores=0.3)
    b = hv.sample_usage(25 * MS, 1 * MS, rng=rng_b, noise_cores=0.3)
    assert np.array_equal(a, b)
    assert a.min() >= 0.0
    assert a.max() <= 8.0
    assert a.std() > 0.0


def test_max_demand_over_window():
    kernel = Kernel()
    hv = Hypervisor(kernel, n_cores=8, history_horizon_us=SEC)
    hv.set_demand(2.0)
    kernel.run(until=100 * MS)
    hv.set_demand(7.0)
    kernel.run(until=110 * MS)
    hv.set_demand(1.0)
    kernel.run(until=120 * MS)
    assert hv.max_demand_over(100 * MS) == pytest.approx(7.0)
    assert hv.max_demand_over(5 * MS) == pytest.approx(1.0)


def test_validation_errors():
    hv = Hypervisor(Kernel(), n_cores=4)
    with pytest.raises(ValueError):
        hv.set_demand(-1.0)
    with pytest.raises(ValueError):
        hv.sample_usage(window_us=0, period_us=1)
    with pytest.raises(ValueError):
        Hypervisor(Kernel(), n_cores=0)


def test_history_is_a_deque_trimmed_to_horizon():
    """Horizon trimming retires old segments from the left in O(1); the
    retained history never grows past the horizon plus one segment."""
    from collections import deque

    kernel = Kernel()
    hv = Hypervisor(kernel, n_cores=8, history_horizon_us=50 * MS)
    assert isinstance(hv._history, deque)
    for step in range(1, 2001):
        kernel.run(until=step * MS)
        hv.set_demand(float(step % 8))
    assert hv._history
    oldest_end = hv._history[0][1]
    assert kernel.now - oldest_end <= 50 * MS + MS
    assert len(hv._history) <= 52


def test_max_demand_over_ignores_history_outside_window():
    """A short window must not see a demand spike that left the window,
    even while the spike is still inside the retained horizon."""
    kernel = Kernel()
    hv = Hypervisor(kernel, n_cores=8, history_horizon_us=SEC)
    hv.set_demand(8.0)                 # spike, long gone
    kernel.run(until=10 * MS)
    hv.set_demand(2.0)
    kernel.run(until=500 * MS)
    assert hv.max_demand_over(100 * MS) == pytest.approx(2.0)
    assert hv.max_demand_over(SEC) == pytest.approx(8.0)


def test_sample_usage_identical_across_repeated_calls():
    """Buffer reuse must not leak state between windows of different
    sizes or between consecutive epochs."""
    kernel = Kernel()
    streams = RngStreams(3)
    hv = Hypervisor(kernel, n_cores=8, history_horizon_us=SEC)
    hv.set_demand(5.0)
    kernel.run(until=100 * MS)
    big = hv.sample_usage(50 * MS, 50)
    small = hv.sample_usage(10 * MS, 50)
    assert big.size == 1000 and small.size == 200
    assert np.array_equal(small, big[-200:])
    again = hv.sample_usage(50 * MS, 50)
    assert np.array_equal(big, again)
