"""Tests for piecewise-constant signals and sliding-window quantiles."""

import pytest

from repro.node.signals import PiecewiseConstant, SlidingWindowQuantile
from repro.sim import Kernel
from repro.sim.units import MS, SEC


def test_integral_of_constant_signal():
    kernel = Kernel()
    signal = PiecewiseConstant(kernel, initial=2.0)
    kernel.run(until=10 * SEC)
    assert signal.integral() == pytest.approx(2.0 * 10 * SEC)


def test_integral_across_changes_is_exact():
    kernel = Kernel()
    signal = PiecewiseConstant(kernel, initial=1.0)
    kernel.run(until=2 * SEC)
    signal.set(3.0)
    kernel.run(until=5 * SEC)
    signal.set(0.0)
    kernel.run(until=100 * SEC)
    expected = 1.0 * 2 * SEC + 3.0 * 3 * SEC
    assert signal.integral() == pytest.approx(expected)


def test_add_is_relative_set():
    kernel = Kernel()
    signal = PiecewiseConstant(kernel, initial=1.5)
    signal.add(2.5)
    assert signal.value == pytest.approx(4.0)


def test_mean_over_window_with_history():
    kernel = Kernel()
    signal = PiecewiseConstant(kernel, initial=0.0, history_horizon_us=10 * SEC)
    kernel.run(until=1 * SEC)
    signal.set(4.0)
    kernel.run(until=3 * SEC)
    # window = last 4s: 1s of 0.0 (clipped to window start=0... now=3s) ->
    # covers [0,1)=0.0 and [1,3)=4.0 -> mean = (0*1 + 4*2)/3
    assert signal.mean_over(4 * SEC) == pytest.approx(8.0 / 3.0)


def test_mean_over_without_history_falls_back_to_current():
    kernel = Kernel()
    signal = PiecewiseConstant(kernel, initial=7.0)
    kernel.run(until=1 * SEC)
    assert signal.mean_over(10 * SEC) == pytest.approx(7.0)


def test_segments_since_clips_to_start():
    kernel = Kernel()
    signal = PiecewiseConstant(kernel, initial=1.0, history_horizon_us=60 * SEC)
    kernel.run(until=2 * SEC)
    signal.set(2.0)
    kernel.run(until=4 * SEC)
    segments = list(signal.segments_since(3 * SEC))
    assert segments == [(3 * SEC, 4 * SEC, 2.0)]


def test_history_horizon_evicts_old_segments():
    kernel = Kernel()
    signal = PiecewiseConstant(kernel, initial=1.0, history_horizon_us=1 * SEC)
    for step in range(1, 6):
        kernel.run(until=step * SEC)
        signal.set(float(step))
    # Only segments overlapping the last second should remain.
    assert len(signal._history) <= 2


def test_quantile_empty_returns_none():
    window = SlidingWindowQuantile(Kernel(), window_us=SEC)
    assert window.quantile(0.9) is None


def test_quantile_nearest_rank():
    kernel = Kernel()
    window = SlidingWindowQuantile(kernel, window_us=10 * SEC)
    for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]:
        window.observe(value)
    assert window.quantile(0.5) == 5.0
    assert window.quantile(0.9) == 9.0
    assert window.quantile(1.0) == 10.0
    assert window.quantile(0.0) == 1.0


def test_quantile_evicts_outside_window():
    kernel = Kernel()
    window = SlidingWindowQuantile(kernel, window_us=1 * SEC)
    window.observe(100.0)
    kernel.run(until=2 * SEC)
    window.observe(1.0)
    assert window.quantile(1.0) == 1.0
    assert len(window) == 1


def test_quantile_rejects_bad_q():
    window = SlidingWindowQuantile(Kernel(), window_us=SEC)
    window.observe(1.0)
    with pytest.raises(ValueError):
        window.quantile(1.5)


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        SlidingWindowQuantile(Kernel(), window_us=0)


def test_segment_at_change_instant_exposes_current_value():
    kernel = Kernel()
    signal = PiecewiseConstant(kernel, initial=1.0, history_horizon_us=10 * SEC)
    kernel.run(until=1 * SEC)
    signal.set(9.0)
    segments = list(signal.segments_since(0))
    # history segment plus zero-width current segment
    assert (0, 1 * SEC, 1.0) in segments
    assert any(value == 9.0 for _s, _e, value in segments)
