"""Tests for the interval counter reader and its injection hook."""

import numpy as np
import pytest

from repro.node.counters import CounterReader
from repro.node.cpu import CpuModel
from repro.node.faults import bad_ips_injector
from repro.sim import Kernel, RngStreams
from repro.sim.units import MS, SEC


def setup_reader():
    kernel = Kernel()
    cpu = CpuModel(kernel, n_cores=4, nominal_freq_ghz=1.5, max_ipc=4.0)
    return kernel, cpu, CounterReader(cpu)


def test_read_reports_interval_ips():
    kernel, cpu, reader = setup_reader()
    cpu.set_phase(utilization=1.0, boundness=1.0)
    kernel.run(until=1 * SEC)
    metrics = reader.read()
    assert metrics.ips == pytest.approx(4 * 4 * 1.5)
    assert metrics.duration_us == 1 * SEC


def test_read_empty_interval_returns_none():
    _kernel, _cpu, reader = setup_reader()
    assert reader.read() is None


def test_consecutive_reads_cover_disjoint_intervals():
    kernel, cpu, reader = setup_reader()
    cpu.set_phase(utilization=1.0, boundness=1.0)
    kernel.run(until=1 * SEC)
    first = reader.read()
    cpu.set_phase(utilization=0.0)
    kernel.run(until=2 * SEC)
    second = reader.read()
    assert first.end_us == second.start_us
    assert second.ips == pytest.approx(0.0)


def test_alpha_reflects_boundness():
    kernel, cpu, reader = setup_reader()
    cpu.set_phase(utilization=1.0, boundness=0.25)
    kernel.run(until=500 * MS)
    metrics = reader.read()
    assert metrics.alpha == pytest.approx(0.25)
    assert metrics.utilization == pytest.approx(1.0)


def test_mean_watts_positive_even_idle():
    kernel, cpu, reader = setup_reader()
    cpu.set_phase(utilization=0.0)
    kernel.run(until=1 * SEC)
    assert reader.read().mean_watts > 0


def test_injector_corrupts_requested_fraction():
    kernel, cpu, reader = setup_reader()
    rng = RngStreams(0).get("inject")
    reader.add_injector(bad_ips_injector(rng, probability=0.5, bad_value=1e9))
    cpu.set_phase(utilization=1.0, boundness=1.0)
    corrupted = 0
    reads = 400
    for i in range(1, reads + 1):
        kernel.run(until=i * 100 * MS)
        if reader.read().ips >= 1e9:
            corrupted += 1
    assert corrupted / reads == pytest.approx(0.5, abs=0.08)


def test_clear_injectors_restores_clean_readings():
    kernel, cpu, reader = setup_reader()
    rng = RngStreams(0).get("inject")
    reader.add_injector(bad_ips_injector(rng, probability=1.0))
    cpu.set_phase(utilization=1.0, boundness=1.0)
    kernel.run(until=1 * SEC)
    assert reader.read().ips >= 1e9
    reader.clear_injectors()
    kernel.run(until=2 * SEC)
    assert reader.read().ips == pytest.approx(24.0)


def test_injector_probability_validated():
    with pytest.raises(ValueError):
        bad_ips_injector(np.random.default_rng(0), probability=1.5)
