"""Tests for the power model."""

import pytest

from repro.node.power import PowerModel


def test_idle_power_still_scales_with_frequency():
    """C-states disabled: higher frequency costs power even at idle."""
    model = PowerModel()
    low = model.watts(n_cores=8, freq_ghz=1.5, utilization=0.0)
    high = model.watts(n_cores=8, freq_ghz=2.3, utilization=0.0)
    assert high > low


def test_busy_power_exceeds_idle_power():
    model = PowerModel()
    idle = model.watts(8, 1.5, 0.0)
    busy = model.watts(8, 1.5, 1.0)
    assert busy > idle


def test_dynamic_power_cubic_in_frequency():
    model = PowerModel(static_watts=0.0, idle_activity=0.0)
    p1 = model.watts(1, 1.0, 1.0)
    p2 = model.watts(1, 2.0, 1.0)
    assert p2 / p1 == pytest.approx(8.0)


def test_power_linear_in_cores():
    model = PowerModel(static_watts=0.0)
    assert model.watts(4, 1.5, 0.5) == pytest.approx(2 * model.watts(2, 1.5, 0.5))


def test_parameter_validation():
    with pytest.raises(ValueError):
        PowerModel(static_watts=-1.0)
    with pytest.raises(ValueError):
        PowerModel(dynamic_coeff=0.0)
    with pytest.raises(ValueError):
        PowerModel(idle_activity=1.5)
