"""Property-based tests (hypothesis) for node-substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.node.cpu import CpuModel
from repro.node.hypervisor import Hypervisor
from repro.node.memory import Tier, TieredMemory
from repro.sim import Kernel
from repro.sim.units import MS, SEC

cores = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)


@given(
    demands=st.lists(cores, min_size=1, max_size=30),
    harvests=st.lists(st.integers(min_value=0, max_value=8), min_size=1,
                      max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_hypervisor_conservation(demands, harvests):
    """usage + deficit == demand, and usage <= allocated, at all times."""
    kernel = Kernel()
    hv = Hypervisor(kernel, n_cores=8)
    step = 0
    for demand, harvest in zip(demands, harvests):
        hv.set_demand(demand)
        hv.set_harvested(harvest)
        assert hv.usage + hv.deficit == max(0.0, min(demand, 8.0) - 0.0) or (
            abs(hv.usage + hv.deficit - min(demand, 8.0)) < 1e-9
        )
        assert hv.usage <= hv.allocated + 1e-9
        assert 0 <= hv.harvested <= 8
        step += 1
        kernel.run(until=step * 10 * MS)
    snap = hv.snapshot()
    # integral identity: usage + deficit integrals == demand integral
    assert abs(
        (snap.usage_cus + snap.deficit_cus) - snap.demand_cus
    ) <= 1e-6 * max(1.0, snap.demand_cus)


@given(
    rates=st.lists(
        st.floats(min_value=0.0, max_value=50_000.0, allow_nan=False),
        min_size=4,
        max_size=16,
    ),
    migrations=st.lists(st.integers(min_value=0, max_value=3), max_size=10),
)
@settings(max_examples=50, deadline=None)
def test_memory_access_accounting_conserved(rates, migrations):
    """local + remote accesses == sum of per-region true accesses."""
    kernel = Kernel()
    memory = TieredMemory(kernel, n_regions=len(rates), pages_per_region=64)
    memory.set_rates(rates)
    now = 0
    for region in migrations:
        region = region % len(rates)
        now += 100 * MS
        kernel.run(until=now)
        memory.migrate(
            region,
            Tier.REMOTE if memory.tier_of(region) is Tier.LOCAL
            else Tier.LOCAL,
        )
    kernel.run(until=now + 1 * SEC)
    snap = memory.snapshot()
    truth = memory.true_region_accesses().sum()
    assert abs(snap.total_accesses - truth) <= 1e-6 * max(1.0, truth)


@given(
    freqs=st.lists(
        st.floats(min_value=1.0, max_value=2.6, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    utils=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
)
@settings(max_examples=50, deadline=None)
def test_cpu_counters_monotone_and_consistent(freqs, utils):
    """Counters never decrease; unhalted <= total; stalled <= unhalted."""
    kernel = Kernel()
    cpu = CpuModel(kernel, n_cores=4)
    previous = cpu.snapshot()
    step = 0
    for freq, util in zip(freqs, utils):
        cpu.set_frequency(freq)
        cpu.set_phase(utilization=util, boundness=0.5)
        step += 1
        kernel.run(until=step * 50 * MS)
        snap = cpu.snapshot()
        assert snap.instructions >= previous.instructions - 1e-12
        assert snap.energy_joules >= previous.energy_joules - 1e-12
        assert snap.total_cycles >= previous.total_cycles - 1e-12
        assert snap.unhalted_cycles <= snap.total_cycles + 1e-9
        assert snap.stalled_cycles <= snap.unhalted_cycles + 1e-9
        previous = snap
