"""Tests for fault injectors: model breaker and delay injector."""

import numpy as np
import pytest

from repro.node.faults import DelayInjector, ModelBreaker, bad_usage_injector
from repro.sim.units import SEC


def test_model_breaker_passthrough_when_disarmed():
    breaker = ModelBreaker(broken_value=99)
    assert breaker.apply(5) == 5
    assert breaker.activations == 0


def test_model_breaker_overrides_when_armed():
    breaker = ModelBreaker(broken_value=99)
    breaker.arm()
    assert breaker.apply(5) == 99
    assert breaker.apply(7) == 99
    assert breaker.activations == 2
    breaker.disarm()
    assert breaker.apply(5) == 5


def test_delay_injector_consumes_windows_in_order():
    injector = DelayInjector()
    injector.add_window(at_us=5 * SEC, duration_us=2 * SEC)
    injector.add_window(at_us=1 * SEC, duration_us=1 * SEC)
    assert injector.pending_delay(0) == 0
    assert injector.pending_delay(1 * SEC) == 1 * SEC
    assert injector.pending_delay(1 * SEC) == 0  # consumed
    assert injector.pending_delay(10 * SEC) == 2 * SEC


def test_delay_injector_trigger_now_is_one_shot():
    injector = DelayInjector()
    injector.trigger_now(30 * SEC)
    assert injector.pending_delay(42) == 30 * SEC
    assert injector.pending_delay(43) == 0
    assert injector.triggered == [(42, 30 * SEC)]


def test_delay_injector_validation():
    injector = DelayInjector()
    with pytest.raises(ValueError):
        injector.add_window(at_us=-1, duration_us=1)
    with pytest.raises(ValueError):
        injector.add_window(at_us=0, duration_us=0)
    with pytest.raises(ValueError):
        injector.trigger_now(0)


def test_bad_usage_injector_zeroes_windows():
    rng = np.random.default_rng(0)
    inject = bad_usage_injector(rng, probability=1.0, scale=0.0)
    samples = np.ones(10) * 4.0
    assert inject(samples).sum() == 0.0


def test_bad_usage_injector_probability_zero_is_identity():
    rng = np.random.default_rng(0)
    inject = bad_usage_injector(rng, probability=0.0)
    samples = np.ones(5)
    assert np.array_equal(inject(samples), samples)


def test_stale_read_injector_serves_last_genuine_value():
    from repro.node.faults import StaleReadInjector

    rng = np.random.default_rng(1)
    inject = StaleReadInjector(rng, probability=1.0)
    first = np.array([1.0, 2.0])
    assert inject(first) is first  # nothing stale to serve yet
    second = np.array([3.0, 4.0])
    served = inject(second)
    assert np.array_equal(served, first)
    assert inject.stale_reads == 1
    # The stale snapshot is a defensive copy: mutating the original
    # buffer (reuse on the hot path) cannot corrupt later stale reads.
    first[:] = -1.0
    assert np.array_equal(inject(second), np.array([1.0, 2.0]))


def test_stale_read_injector_probability_zero_is_identity():
    from repro.node.faults import StaleReadInjector

    inject = StaleReadInjector(np.random.default_rng(0), probability=0.0)
    a, b = object(), object()
    assert inject(a) is a
    assert inject(b) is b
    assert inject.stale_reads == 0


def test_stale_read_injector_validates_probability():
    from repro.node.faults import StaleReadInjector

    with pytest.raises(ValueError):
        StaleReadInjector(np.random.default_rng(0), probability=1.5)


def test_dropped_batch_injector_errors_whole_batches():
    from repro.node.faults import dropped_batch_injector
    from repro.node.memory import ScanResult

    batch = [
        ScanResult(region=i, set_bits=5, pages=16, elapsed_us=100,
                   saturated=False, error=False)
        for i in range(3)
    ]
    inject = dropped_batch_injector(np.random.default_rng(0), 1.0)
    dropped = inject(batch)
    assert all(result.error for result in dropped)
    assert [r.region for r in dropped] == [0, 1, 2]
    assert not any(result.error for result in batch)  # originals untouched
    assert inject([]) == []  # empty batches pass through


def test_dropped_batch_injector_probability_zero_is_identity():
    from repro.node.faults import dropped_batch_injector
    from repro.node.memory import ScanResult

    batch = [ScanResult(region=0, set_bits=1, pages=16, elapsed_us=1,
                        saturated=False, error=False)]
    inject = dropped_batch_injector(np.random.default_rng(0), 0.0)
    assert inject(batch) == batch
