"""Tests for the two-tier memory substrate."""

import numpy as np
import pytest

from repro.node.memory import Tier, TieredMemory
from repro.sim import Kernel, RngStreams
from repro.sim.units import MS, SEC


def make_memory(kernel=None, n_regions=8, pages=512, rng=None):
    return TieredMemory(
        kernel or Kernel(),
        n_regions=n_regions,
        pages_per_region=pages,
        rng=rng,
    )


def test_all_regions_start_local():
    memory = make_memory()
    assert memory.n_local == 8
    assert memory.remote_regions.size == 0


def test_accesses_accrue_to_local_counter():
    kernel = Kernel()
    memory = make_memory(kernel, n_regions=4)
    memory.set_rates([100.0, 0.0, 0.0, 0.0])
    kernel.run(until=2 * SEC)
    snap = memory.snapshot()
    assert snap.local_accesses == pytest.approx(200.0)
    assert snap.remote_accesses == pytest.approx(0.0)


def test_remote_accesses_after_migration():
    kernel = Kernel()
    memory = make_memory(kernel, n_regions=4)
    memory.set_rates([100.0, 50.0, 0.0, 0.0])
    memory.migrate(0, Tier.REMOTE)
    kernel.run(until=1 * SEC)
    snap = memory.snapshot()
    assert snap.remote_accesses == pytest.approx(100.0)
    assert snap.local_accesses == pytest.approx(50.0)
    assert snap.remote_fraction() == pytest.approx(100.0 / 150.0)


def test_migration_is_idempotent_and_counted():
    memory = make_memory()
    assert memory.migrate(3, Tier.REMOTE) is True
    assert memory.migrate(3, Tier.REMOTE) is False
    assert memory.snapshot().migrations == 1
    assert memory.tier_of(3) is Tier.REMOTE


def test_migrate_many_returns_moved_count():
    memory = make_memory()
    moved = memory.migrate_many([0, 1, 1, 2], Tier.REMOTE)
    assert moved == 3
    assert memory.n_local == 5


def test_scan_observes_poisson_occupancy_expectation():
    kernel = Kernel()
    memory = make_memory(kernel, n_regions=2, pages=512)
    memory.set_rates([512.0, 0.0])  # one access per page per second on avg
    kernel.run(until=1 * SEC)
    result = memory.scan(0)
    expected = 512 * (1 - np.exp(-1.0))
    assert result.set_bits == pytest.approx(expected, abs=1)
    assert not result.saturated
    assert memory.scan(1).set_bits == 0


def test_scan_clears_bits_so_next_scan_sees_only_new_accesses():
    kernel = Kernel()
    memory = make_memory(kernel, n_regions=1)
    memory.set_rates([512.0])
    kernel.run(until=1 * SEC)
    first = memory.scan(0)
    second = memory.scan(0)  # immediately after: no new accesses
    assert first.set_bits > 0
    assert second.set_bits == 0


def test_slow_scanning_saturates_hot_region():
    kernel = Kernel()
    memory = make_memory(kernel, n_regions=1)
    memory.set_rates([50_000.0])
    kernel.run(until=10 * SEC)  # ~1000 accesses per page: all bits set
    result = memory.scan(0)
    assert result.saturated
    assert result.set_bits == 512


def test_reset_accounting_counts_cleared_bits():
    kernel = Kernel()
    memory = make_memory(kernel, n_regions=2)
    memory.set_rates([512.0, 512.0])
    kernel.run(until=1 * SEC)
    a = memory.scan(0)
    b = memory.scan(1)
    snap = memory.snapshot()
    assert snap.bit_resets == a.set_bits + b.set_bits
    assert snap.pages_scanned == 2 * 512


def test_scan_faults_fail_reading_and_leave_bits():
    kernel = Kernel()
    rng = RngStreams(3).get("memfault")
    memory = make_memory(kernel, n_regions=1, rng=rng)
    memory.set_scan_fault_probability(1.0)
    memory.set_rates([512.0])
    kernel.run(until=1 * SEC)
    failed = memory.scan(0)
    assert failed.error
    assert failed.set_bits == 0
    memory.set_scan_fault_probability(0.0)
    ok = memory.scan(0)
    assert not ok.error
    assert ok.set_bits > 0  # bits survived the failed scan


def test_scan_fault_requires_rng():
    memory = make_memory(rng=None)
    with pytest.raises(ValueError):
        memory.set_scan_fault_probability(0.5)


def test_true_region_accesses_ground_truth():
    kernel = Kernel()
    memory = make_memory(kernel, n_regions=3)
    memory.set_rates([10.0, 20.0, 0.0])
    kernel.run(until=10 * SEC)
    truth = memory.true_region_accesses()
    assert truth == pytest.approx([100.0, 200.0, 0.0])


def test_rate_vector_shape_validated():
    memory = make_memory(n_regions=4)
    with pytest.raises(ValueError):
        memory.set_rates([1.0, 2.0])
    with pytest.raises(ValueError):
        memory.set_rates([-1.0, 0.0, 0.0, 0.0])


def test_region_bounds_checked():
    memory = make_memory(n_regions=4)
    with pytest.raises(IndexError):
        memory.scan(4)
    with pytest.raises(IndexError):
        memory.migrate(-1, Tier.REMOTE)


def test_stochastic_occupancy_reproducible_with_seed():
    def run(seed):
        kernel = Kernel()
        rng = RngStreams(seed).get("occupancy")
        memory = make_memory(kernel, n_regions=1, rng=rng)
        memory.set_rates([256.0])
        kernel.run(until=1 * SEC)
        return memory.scan(0).set_bits

    assert run(5) == run(5)
