"""Tests for the CPU model: counter accrual, DVFS, work execution."""

import pytest

from repro.node.cpu import CpuModel
from repro.node.power import PowerModel
from repro.sim import Kernel
from repro.sim.units import MS, SEC


def make_cpu(kernel, **kwargs):
    defaults = dict(
        n_cores=4, nominal_freq_ghz=1.5, min_freq_ghz=1.0, max_freq_ghz=2.6,
        max_ipc=4.0,
    )
    defaults.update(kwargs)
    return CpuModel(kernel, **defaults)


def test_counters_accrue_for_busy_cpu_bound_phase():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    cpu.set_phase(utilization=1.0, boundness=1.0, freq_scaling=1.0)
    kernel.run(until=2 * SEC)
    snap = cpu.snapshot()
    # total cycles = n_cores * f * t = 4 * 1.5 * 2 giga-cycles
    assert snap.total_cycles == pytest.approx(12.0)
    assert snap.unhalted_cycles == pytest.approx(12.0)
    assert snap.stalled_cycles == pytest.approx(0.0)
    # instructions = ipc * cycles
    assert snap.instructions == pytest.approx(48.0)


def test_idle_cpu_retires_nothing_but_burns_cycles():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    cpu.set_phase(utilization=0.0)
    kernel.run(until=1 * SEC)
    snap = cpu.snapshot()
    assert snap.instructions == pytest.approx(0.0)
    assert snap.unhalted_cycles == pytest.approx(0.0)
    assert snap.total_cycles == pytest.approx(6.0)  # 4 cores * 1.5 GHz * 1 s
    assert snap.energy_joules > 0.0  # idle power is not free


def test_alpha_equals_utilization_times_boundness():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    cpu.set_phase(utilization=0.8, boundness=0.5)
    assert cpu.alpha == pytest.approx(0.4)


def test_ips_scales_linearly_when_cpu_bound():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    cpu.set_phase(utilization=1.0, boundness=1.0, freq_scaling=1.0)
    base = cpu.ips_rate()
    cpu.set_frequency(2.3)
    assert cpu.ips_rate() / base == pytest.approx(2.3 / 1.5)


def test_ips_flat_when_disk_bound():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    cpu.set_phase(utilization=0.9, boundness=0.2, freq_scaling=0.0)
    base = cpu.ips_rate()
    cpu.set_frequency(2.3)
    assert cpu.ips_rate() == pytest.approx(base)


def test_set_frequency_clamps_to_range():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    assert cpu.set_frequency(9.9) == pytest.approx(2.6)
    assert cpu.set_frequency(0.1) == pytest.approx(1.0)


def test_frequency_change_mid_interval_accrues_exactly():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    cpu.set_phase(utilization=1.0, boundness=1.0, freq_scaling=1.0)
    kernel.run(until=1 * SEC)
    cpu.set_frequency(2.3)
    kernel.run(until=2 * SEC)
    snap = cpu.snapshot()
    # 1 s at 1.5 GHz + 1 s at 2.3 GHz, ipc=4, 4 cores
    expected = 4 * 4 * 1.5 * 1.0 + 4 * 4 * 2.3 * 1.0
    assert snap.instructions == pytest.approx(expected)


def test_energy_integrates_power_model():
    kernel = Kernel()
    power = PowerModel(static_watts=10.0, dynamic_coeff=1.0, idle_activity=0.0)
    cpu = make_cpu(kernel, power_model=power)
    cpu.set_phase(utilization=1.0)
    kernel.run(until=3 * SEC)
    snap = cpu.snapshot()
    expected_watts = 10.0 + 1.0 * 4 * 1.5**3
    assert snap.energy_joules == pytest.approx(expected_watts * 3.0)


def test_run_work_completes_at_expected_time():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    done = []

    def workload():
        cpu.set_phase(utilization=1.0, boundness=1.0, freq_scaling=1.0)
        yield from cpu.run_work(24.0)  # giga-instructions
        cpu.set_phase(utilization=0.0)
        done.append(kernel.now)

    kernel.spawn(workload(), name="wl")
    kernel.run()
    # rate = 4 cores * 4 ipc * 1.5 GHz = 24 Gips -> 1 second
    assert done and done[0] == pytest.approx(1 * SEC, abs=10)


def test_run_work_finishes_faster_after_overclock():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    done = []

    def workload():
        cpu.set_phase(utilization=1.0, boundness=1.0, freq_scaling=1.0)
        yield from cpu.run_work(48.0)  # 2 s at nominal
        done.append(kernel.now)

    kernel.spawn(workload(), name="wl")
    kernel.call_later(1 * SEC, lambda: cpu.set_frequency(2.3))
    kernel.run()
    # first second retires 24 Gi, remaining 24 Gi at 36.8 Gips ~ 0.652 s
    expected = 1 * SEC + int(24.0 / (4 * 4 * 2.3) * SEC)
    assert done and done[0] == pytest.approx(expected, abs=100)


def test_run_work_waits_out_idle_phase():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    done = []

    def workload():
        cpu.set_phase(utilization=0.0)
        yield from cpu.run_work(24.0)
        done.append(kernel.now)

    kernel.spawn(workload(), name="wl")
    kernel.call_later(
        5 * SEC, lambda: cpu.set_phase(utilization=1.0, boundness=1.0)
    )
    kernel.run()
    assert done and done[0] == pytest.approx(6 * SEC, rel=0.01)


def test_run_work_zero_amount_returns_immediately():
    kernel = Kernel()
    cpu = make_cpu(kernel)
    done = []

    def workload():
        yield from cpu.run_work(0.0)
        done.append(kernel.now)

    kernel.spawn(workload(), name="wl")
    kernel.run()
    assert done == [0]


def test_phase_validation():
    cpu = make_cpu(Kernel())
    with pytest.raises(ValueError):
        cpu.set_phase(utilization=1.5)
    with pytest.raises(ValueError):
        cpu.set_phase(utilization=0.5, boundness=-0.1)


def test_constructor_validation():
    with pytest.raises(ValueError):
        CpuModel(Kernel(), n_cores=0)
    with pytest.raises(ValueError):
        CpuModel(Kernel(), nominal_freq_ghz=3.0, max_freq_ghz=2.6)
