"""Fleet configuration: determinism and heterogeneity of node specs."""

import pytest

from repro.fleet.config import (
    AGENT_KINDS,
    FaultPlan,
    FleetConfig,
    NodeSpec,
    node_seed,
)
from repro.platform.taxonomy import NODE_SKUS


def test_node_specs_are_deterministic():
    a = FleetConfig(n_nodes=16, seed=7).node_specs()
    b = FleetConfig(n_nodes=16, seed=7).node_specs()
    assert a == b


def test_node_spec_independent_of_fleet_size():
    # Growing the fleet must not re-plan existing nodes: a node's spec
    # depends only on (seed, node_id).
    small = FleetConfig(n_nodes=4, seed=3)
    large = FleetConfig(n_nodes=64, seed=3)
    for node_id in range(4):
        assert small.node_spec(node_id) == large.node_spec(node_id)


def test_different_seeds_give_different_plans():
    a = FleetConfig(n_nodes=32, seed=0).node_specs()
    b = FleetConfig(n_nodes=32, seed=1).node_specs()
    assert a != b


def test_fleet_is_heterogeneous():
    specs = FleetConfig(n_nodes=64, seed=0).node_specs()
    skus = {spec.sku.name for spec in specs}
    assert len(skus) > 1
    assert skus <= {sku.name for sku in NODE_SKUS}


def test_mixed_fleet_draws_every_agent_kind():
    specs = FleetConfig(n_nodes=64, agent="mixed", seed=0).node_specs()
    assert {spec.agent for spec in specs} == set(AGENT_KINDS)


def test_single_kind_fleet_is_uniform():
    specs = FleetConfig(n_nodes=8, agent="harvest", seed=0).node_specs()
    assert all(spec.agent == "harvest" for spec in specs)
    assert all(spec.workload in ("image-dnn", "moses") for spec in specs)


def test_rack_assignment_and_fault_window():
    config = FleetConfig(
        n_nodes=10,
        rack_size=4,
        fault=FaultPlan(racks=(1,), start_s=10, duration_s=5),
    )
    assert [config.node_spec(i).rack for i in range(10)] == [
        0, 0, 0, 0, 1, 1, 1, 1, 2, 2
    ]
    assert config.n_racks == 3
    assert config.fault_window_us() == (10_000_000, 15_000_000)


def test_node_seeds_are_distinct():
    seeds = {node_seed(0, i) for i in range(256)}
    assert len(seeds) == 256


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        FleetConfig(n_nodes=0)
    with pytest.raises(ValueError):
        FleetConfig(n_nodes=1, agent="nonesuch")
    with pytest.raises(ValueError):
        FleetConfig(n_nodes=1, duration_s=0)
    with pytest.raises(ValueError):
        FaultPlan(probability=1.5)
    with pytest.raises(ValueError):
        FleetConfig(n_nodes=4).node_spec(4)


def test_impossible_fault_plans_rejected():
    # A burst aimed at a rack the fleet doesn't have, or starting after
    # the run ends, would silently produce a faultless "fault" run.
    with pytest.raises(ValueError, match="outside fleet"):
        FleetConfig(n_nodes=8, rack_size=8, fault=FaultPlan(racks=(5,)))
    with pytest.raises(ValueError, match="only run"):
        FleetConfig(
            n_nodes=2, duration_s=20, fault=FaultPlan(start_s=30)
        )


def test_spec_is_frozen():
    spec = FleetConfig(n_nodes=1).node_spec(0)
    assert isinstance(spec, NodeSpec)
    with pytest.raises(AttributeError):
        spec.agent = "memory"
