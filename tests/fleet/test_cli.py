"""The ``python -m repro`` command line, driven in-process."""

import pytest

from repro.cli import main, render_experiments_markdown
from repro.experiments.driver import reproduce_all


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out and "table2" in out and "mixed" in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Taxonomy of production agents" in out
    assert "35%" in out


def test_fleet_smoke(capsys):
    assert main(
        ["fleet", "--nodes", "2", "--seconds", "10", "--workers", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "== fleet: 2 nodes × 10s simulated ==" in out
    assert "digest:" in out


def test_fleet_same_seed_same_digest_across_workers(capsys):
    args = ["fleet", "--nodes", "4", "--seconds", "10", "--seed", "5"]
    main(args + ["--workers", "1"])
    first = capsys.readouterr().out
    main(args + ["--workers", "2"])
    second = capsys.readouterr().out
    digest = [l for l in first.splitlines() if l.startswith("digest:")]
    assert digest == [
        l for l in second.splitlines() if l.startswith("digest:")
    ]


def test_fleet_fault_flags(capsys):
    assert main(
        ["fleet", "--nodes", "2", "--seconds", "15", "--rack-size", "1",
         "--fault-racks", "0", "--fault-start", "2",
         "--fault-duration", "8"]
    ) == 0
    assert "digest:" in capsys.readouterr().out


def test_fleet_rejects_bad_fault_racks():
    with pytest.raises(SystemExit):
        main(["fleet", "--nodes", "2", "--fault-racks", ","])


def test_run_rejects_unknown_artifact(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_experiments_markdown_rendering():
    runs = reproduce_all(only=["table1"])
    text = render_experiments_markdown(runs, quick=True)
    assert text.startswith("# Measured outputs")
    assert "## table1" in text
    assert "| class |" in text
    assert "--quick" in text


def test_reproduce_all_rejects_unknown_only_artifact():
    with pytest.raises(SystemExit):
        main(["reproduce-all", "--only", "fig99"])


def test_reproduce_all_rejects_bad_granularity():
    with pytest.raises(SystemExit):
        main(["reproduce-all", "--granularity", "bogus"])


def test_reproduce_all_rejects_mixed_known_and_unknown_only():
    with pytest.raises(SystemExit):
        main(["reproduce-all", "--only", "table1", "fig99"])


def test_fleet_fault_kind_flags_reach_the_simulation(capsys):
    digests = {}
    for kind in ("bad_data", "dropout", "crash_restart"):
        assert main(
            ["fleet", "--nodes", "2", "--seconds", "15", "--rack-size", "1",
             "--fault-racks", "0", "--fault-start", "2",
             "--fault-duration", "8", "--fault-probability", "1.0",
             "--fault-kind", kind]
        ) == 0
        out = capsys.readouterr().out
        digests[kind] = [
            l for l in out.splitlines() if l.startswith("digest:")
        ]
        assert digests[kind]
    # The flag must actually reach the simulation: each kind injects a
    # different failure, so the three digests cannot coincide.
    assert len({tuple(d) for d in digests.values()}) == 3


def test_fleet_rejects_unknown_fault_kind():
    with pytest.raises(SystemExit):
        main(["fleet", "--nodes", "2", "--fault-racks", "0",
              "--fault-kind", "meteor"])
