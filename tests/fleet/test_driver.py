"""FleetDriver: serial/parallel equivalence and shard-order invariance.

These are the PR's headline guarantees: the same seed produces
bit-identical fleet aggregates whether nodes run in one process, across
a pool, or in shuffled order (DESIGN.md §5).
"""

import random

from repro.experiments.driver import FleetDriver, reproduce_all
from repro.fleet.aggregate import FleetAggregate
from repro.fleet.config import FleetConfig
from repro.fleet.scenario import FleetScenario

CONFIG = FleetConfig(n_nodes=6, agent="overclock", seed=11, duration_s=20)


def test_serial_and_parallel_aggregates_are_bit_identical():
    serial = FleetDriver(CONFIG, workers=1).run()
    parallel = FleetDriver(CONFIG, workers=2).run()
    assert serial.digest() == parallel.digest()
    assert serial.as_dict() == parallel.as_dict()


def test_aggregate_is_invariant_under_shuffled_shard_order():
    scenario = FleetScenario(CONFIG)
    ordered = scenario.run(range(CONFIG.n_nodes))
    shuffled_ids = list(range(CONFIG.n_nodes))
    random.Random(3).shuffle(shuffled_ids)
    shuffled = scenario.run(shuffled_ids)
    assert (
        FleetAggregate.from_results(ordered).digest()
        == FleetAggregate.from_results(shuffled).digest()
    )


def test_per_node_results_identical_across_shardings():
    serial = {r.node_id: r for r in FleetScenario(CONFIG).run()}
    driver = FleetDriver(CONFIG, workers=3)
    parallel = {
        r.node_id: r for r in FleetDriver(CONFIG, workers=3).run().results
    }
    assert serial == parallel
    # shards partition the fleet
    flat = sorted(i for shard in driver.shards() for i in shard)
    assert flat == list(range(CONFIG.n_nodes))


def test_workers_capped_at_fleet_size():
    driver = FleetDriver(FleetConfig(n_nodes=2, duration_s=5), workers=64)
    assert driver.workers == 2


def test_reproduce_all_parallel_matches_serial_rows():
    only = ["table1", "table2"]
    serial = reproduce_all(only=only)
    parallel = reproduce_all(parallel=True, workers=2, only=only)
    assert [run.name for run in serial] == only
    assert [run.name for run in parallel] == only
    for s, p in zip(serial, parallel):
        assert s.result.rows == p.result.rows
        assert s.result.columns == p.result.columns


def test_reproduce_all_rejects_unknown_artifacts():
    import pytest

    with pytest.raises(ValueError):
        reproduce_all(only=["fig99"])
