"""Fleet fault plumbing: windowed gating, per-agent/per-kind bursts."""

import pytest

from repro.fleet.config import FAULT_KINDS, NodeSpec
from repro.fleet.faults import attach_burst, windowed
from repro.fleet.node import FleetNode
from repro.platform.taxonomy import NODE_SKUS
from repro.sim import Kernel
from repro.sim.units import SEC


def _node(agent, workload, fault_kind=None, probability=1.0, seconds=20):
    spec = NodeSpec(
        node_id=0,
        rack=0,
        sku=NODE_SKUS[0],
        agent=agent,
        workload=workload,
        seed=1234,
    )
    window = (2 * SEC, 10 * SEC) if fault_kind else None
    return FleetNode(
        spec,
        duration_s=seconds,
        fault_window_us=window,
        fault_probability=probability,
        fault_kind=fault_kind or "bad_data",
    )


# -- windowed ----------------------------------------------------------------


def test_windowed_applies_only_inside_the_window():
    kernel = Kernel()
    inject = windowed(kernel, lambda v: v * 10, (5, 10))
    seen = []
    for t in (0, 4, 5, 7, 9, 10, 11):
        kernel.call_at(t, lambda: seen.append(inject(1)))
    kernel.run(until=20)
    # start boundary inclusive, end boundary exclusive
    assert seen == [1, 1, 10, 10, 10, 1, 1]


def test_windowed_rejects_empty_and_inverted_windows():
    kernel = Kernel()
    with pytest.raises(ValueError):
        windowed(kernel, lambda v: v, (5, 5))
    with pytest.raises(ValueError):
        windowed(kernel, lambda v: v, (10, 5))


# -- attach_burst: bad_data per agent kind -----------------------------------


@pytest.mark.parametrize(
    "agent,workload",
    [("overclock", "Synthetic"), ("harvest", "image-dnn"),
     ("memory", "ObjectStore")],
)
def test_attach_burst_bad_data_each_agent_kind(agent, workload):
    """The burst changes behavior vs the same node without one."""
    clean = _node(agent, workload).run()
    faulted = _node(agent, workload, fault_kind="bad_data").run()
    assert clean.node_id == faulted.node_id
    # Corrupt telemetry must be observable somewhere: validation
    # failures, fallback actions, or (for memory) errored scans — the
    # two runs cannot be bit-identical.
    assert (clean.stats, clean.action_histogram) != (
        faulted.stats, faulted.action_histogram
    )


@pytest.mark.parametrize(
    "agent,workload",
    [("overclock", "Synthetic"), ("harvest", "image-dnn"),
     ("memory", "ObjectStore")],
)
def test_attach_burst_dropout_each_agent_kind(agent, workload):
    clean = _node(agent, workload).run()
    faulted = _node(agent, workload, fault_kind="dropout").run()
    assert (clean.stats, clean.action_histogram) != (
        faulted.stats, faulted.action_histogram
    )


@pytest.mark.parametrize(
    "agent,workload",
    [("overclock", "Synthetic"), ("harvest", "image-dnn"),
     ("memory", "ObjectStore")],
)
def test_attach_burst_crash_restart_each_agent_kind(agent, workload):
    faulted = _node(agent, workload, fault_kind="crash_restart").run()
    assert faulted.stats["agent_kills"] == 1
    assert faulted.stats["agent_restarts"] == 1


def test_crash_restart_probability_zero_never_crashes():
    result = _node(
        "overclock", "Synthetic", fault_kind="crash_restart",
        probability=0.0,
    ).run()
    assert result.stats["agent_kills"] == 0
    assert result.stats["agent_restarts"] == 0


def test_attach_burst_rejects_unknown_agent_kind():
    kernel = Kernel()
    with pytest.raises(ValueError):
        attach_burst(
            kernel, "toaster", object(), _Streams(), (0, SEC), 0.5,
            kind="bad_data",
        )
    with pytest.raises(ValueError):
        attach_burst(
            kernel, "toaster", object(), _Streams(), (0, SEC), 0.5,
            kind="dropout",
        )


class _Streams:
    def get(self, name):
        import numpy as np

        return np.random.default_rng(0)


def test_fault_kinds_registry_is_exactly_the_dispatched_set():
    assert FAULT_KINDS == ("bad_data", "dropout", "crash_restart")
