"""FleetNode behavior: per-agent assembly, SLO windows, fault bursts."""

import math

from repro.fleet.config import FaultPlan, FleetConfig
from repro.fleet.node import NodeResult
from repro.fleet.scenario import FleetScenario


def _run_one(agent, seconds, fault=None, seed=0, n_nodes=1, node_id=0):
    config = FleetConfig(
        n_nodes=n_nodes,
        agent=agent,
        seed=seed,
        duration_s=seconds,
        fault=fault,
    )
    return FleetScenario(config).build_node(node_id).run()


def test_overclock_node_produces_full_result():
    result = _run_one("overclock", 30)
    assert isinstance(result, NodeResult)
    assert result.agent == "overclock"
    assert result.sim_seconds == 30
    assert result.slo_windows == 30_000_000 // 5_000_000
    assert 0.0 <= result.slo_violation_rate <= 1.0
    assert result.stats["actuations"] > 0
    assert set(result.safeguard_trips) == {"model", "actuator"}
    assert set(result.action_histogram) == {"model", "default", "none"}
    assert sum(result.action_histogram.values()) == (
        result.stats["actuations"]
    )
    assert not math.isnan(result.perf_value)


def test_harvest_node_runs():
    result = _run_one("harvest", 10)
    assert result.agent == "harvest"
    assert result.workload in ("image-dnn", "moses")
    assert result.stats["actuations"] > 0
    assert result.perf_metric.startswith("p99")


def test_memory_node_runs():
    result = _run_one("memory", 20)
    assert result.agent == "memory"
    assert result.stats["epochs"] > 0
    assert result.slo_windows > 0


def test_node_runs_are_reproducible():
    a = _run_one("overclock", 20)
    b = _run_one("overclock", 20)
    assert a == b


def test_rack_burst_reaches_the_validation_safeguard():
    fault = FaultPlan(racks=(0,), start_s=5, duration_s=20,
                      probability=0.9)
    clean = _run_one("overclock", 30)
    faulted = _run_one("overclock", 30, fault=fault)
    assert (
        faulted.stats["validation_failures"]
        > clean.stats["validation_failures"]
    )
    # The guarded agent absorbs the burst: bad readings are discarded
    # (validation failures), not learned from.
    assert faulted.stats["validation_failures"] > 0


def test_burst_spares_other_racks():
    fault = FaultPlan(racks=(1,), start_s=5, duration_s=20)
    config = FleetConfig(
        n_nodes=2, agent="overclock", duration_s=30, rack_size=1,
        fault=fault,
    )
    scenario = FleetScenario(config)
    spared = scenario.build_node(0).run()
    hit = scenario.build_node(1).run()
    assert list(scenario.affected_nodes()) == [1]
    assert spared.stats["validation_failures"] == 0
    assert hit.stats["validation_failures"] > 0
