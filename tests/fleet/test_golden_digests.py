"""Golden digests: optimization must never change a result bit.

The expected values live in the committed conformance corpus
(``tests/conformance/vectors/golden_digests.json``), recorded at the
seed commit (pre kernel-overhaul) and re-recordable with ``repro
conformance record``.  They cover all three agent kinds, heterogeneous
SKU mixes, and a rack fault burst.  Every hot-path change — kernel
scheduling, event pooling, log modes, driver sharding, numeric inner
loops — must reproduce them exactly, across worker counts and log
modes.  A companion test in ``tests/conformance`` pins the corpus table
to the :mod:`repro.perf.baselines` constants the bench harness embeds.
"""

from pathlib import Path

import pytest

from repro.conformance.corpus import load_golden_digests
from repro.conformance.scenarios import GOLDEN_FLEET_CONFIGS
from repro.experiments.common import experiment_digest
from repro.experiments.driver import FleetDriver, reproduce_all
from repro.fleet.node import FleetNode
from repro.fleet.scenario import FleetScenario

CORPUS_DIR = str(
    Path(__file__).resolve().parents[1] / "conformance" / "vectors"
)
_GOLDEN = load_golden_digests(CORPUS_DIR)
GOLDEN_FLEETS = {
    name: (config, _GOLDEN["fleet"][name])
    for name, config in GOLDEN_FLEET_CONFIGS.items()
}
GOLDEN_EXPERIMENTS = _GOLDEN["experiments"]
GOLDEN_EXPERIMENT_SCALE = _GOLDEN["experiment_scale"]


def test_corpus_pins_every_golden_fleet():
    assert set(_GOLDEN["fleet"]) == set(GOLDEN_FLEET_CONFIGS)


@pytest.mark.parametrize("name", sorted(GOLDEN_FLEETS))
def test_fleet_digest_matches_seed_baseline(name):
    config, expected = GOLDEN_FLEETS[name]
    assert FleetDriver(config, workers=1).run().digest() == expected


def test_fleet_digest_identical_across_worker_counts():
    config, expected = GOLDEN_FLEETS["overclock_8x20_seed7"]
    parallel = FleetDriver(config, workers=3).run()
    assert parallel.digest() == expected


def test_fleet_digest_identical_across_log_modes():
    config, expected = GOLDEN_FLEETS["mixed_6x15_seed3"]
    scenario = FleetScenario(config)
    full_results = []
    for node_id in range(config.n_nodes):
        node = scenario.build_node(node_id)
        assert node.log_mode == "counts"  # fleet default skips event objects
        full = FleetNode(
            config.node_spec(node_id),
            duration_s=config.duration_s,
            log_mode="full",
        )
        full_results.append(full.run())
    from repro.fleet.aggregate import FleetAggregate

    assert FleetAggregate.from_results(full_results).digest() == expected


def test_experiment_results_match_seed_baseline():
    runs = reproduce_all(
        only=list(GOLDEN_EXPERIMENTS), scale=GOLDEN_EXPERIMENT_SCALE
    )
    got = {run.name: experiment_digest(run.result) for run in runs}
    assert got == GOLDEN_EXPERIMENTS


def test_parallel_reproduce_all_streams_canonical_order():
    only = ["table1", "table2", "fig6-left"]
    seen = []
    runs = reproduce_all(
        parallel=True, workers=2, only=only,
        scale=GOLDEN_EXPERIMENT_SCALE,
        on_result=lambda run: seen.append(run.name),
    )
    assert [run.name for run in runs] == only
    assert seen == only
