"""Golden digests: optimization must never change a result bit.

The hashes below were computed at the seed commit (pre kernel-overhaul),
covering all three agent kinds, heterogeneous SKU mixes, and a rack
fault burst.  Every hot-path change — kernel scheduling, event pooling,
log modes, driver sharding, numeric inner loops — must reproduce them
exactly, across worker counts and log modes.
"""

import hashlib
import json

import pytest

from repro.experiments.driver import FleetDriver, reproduce_all
from repro.fleet.config import FaultPlan, FleetConfig
from repro.fleet.node import FleetNode
from repro.fleet.scenario import FleetScenario
from repro.perf.baselines import (
    GOLDEN_EXPERIMENT_DIGESTS as GOLDEN_EXPERIMENTS,
    GOLDEN_EXPERIMENT_SCALE,
    GOLDEN_FLEET_DIGESTS,
)

GOLDEN_FLEETS = {
    "overclock_8x20_seed7": (
        FleetConfig(n_nodes=8, agent="overclock", seed=7, duration_s=20),
        GOLDEN_FLEET_DIGESTS["overclock_8x20_seed7"],
    ),
    "mixed_6x15_seed3": (
        FleetConfig(n_nodes=6, agent="mixed", seed=3, duration_s=15),
        GOLDEN_FLEET_DIGESTS["mixed_6x15_seed3"],
    ),
    "harvest_4x20_seed5_fault": (
        FleetConfig(
            n_nodes=4, agent="harvest", seed=5, duration_s=20, rack_size=2,
            fault=FaultPlan(racks=(0,), start_s=5, duration_s=10,
                            probability=0.9),
        ),
        GOLDEN_FLEET_DIGESTS["harvest_4x20_seed5_fault"],
    ),
}


def _canon_cell(value):
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return str(value)
    try:
        return repr(float(value))
    except (TypeError, ValueError):
        return str(value)


def experiment_digest(result) -> str:
    """Float-exact, type-canonical digest of an ExperimentResult."""
    payload = json.dumps(
        {
            "name": result.name,
            "columns": [str(column) for column in result.columns],
            "rows": [
                {str(k): _canon_cell(v) for k, v in row.items()}
                for row in result.rows
            ],
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("name", sorted(GOLDEN_FLEETS))
def test_fleet_digest_matches_seed_baseline(name):
    config, expected = GOLDEN_FLEETS[name]
    assert FleetDriver(config, workers=1).run().digest() == expected


def test_fleet_digest_identical_across_worker_counts():
    config, expected = GOLDEN_FLEETS["overclock_8x20_seed7"]
    parallel = FleetDriver(config, workers=3).run()
    assert parallel.digest() == expected


def test_fleet_digest_identical_across_log_modes():
    config, expected = GOLDEN_FLEETS["mixed_6x15_seed3"]
    scenario = FleetScenario(config)
    full_results = []
    for node_id in range(config.n_nodes):
        node = scenario.build_node(node_id)
        assert node.log_mode == "counts"  # fleet default skips event objects
        full = FleetNode(
            config.node_spec(node_id),
            duration_s=config.duration_s,
            log_mode="full",
        )
        full_results.append(full.run())
    from repro.fleet.aggregate import FleetAggregate

    assert FleetAggregate.from_results(full_results).digest() == expected


def test_experiment_results_match_seed_baseline():
    runs = reproduce_all(
        only=list(GOLDEN_EXPERIMENTS), scale=GOLDEN_EXPERIMENT_SCALE
    )
    got = {run.name: experiment_digest(run.result) for run in runs}
    assert got == GOLDEN_EXPERIMENTS


def test_parallel_reproduce_all_streams_canonical_order():
    only = ["table1", "table2", "fig6-left"]
    seen = []
    runs = reproduce_all(
        parallel=True, workers=2, only=only,
        scale=GOLDEN_EXPERIMENT_SCALE,
        on_result=lambda run: seen.append(run.name),
    )
    assert [run.name for run in runs] == only
    assert seen == only
