"""Real-process serve chaos: signals and the kill-server harness.

These spawn actual ``python -m repro serve start`` servers (and, in
the slow test, the full kill-server harness with its SIGKILL), so they
are the only serve tests that exercise the asyncio signal handlers and
process teardown exactly as a terminal or CI job would.
"""

import os
import signal
import subprocess
import sys
import tempfile

import pytest

from repro.serve.client import ServeClient, wait_for_server


def _env(cache_dir):
    return {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(p for p in sys.path if p),
        "REPRO_CACHE_DIR": cache_dir,
    }


def _start_server(cache_dir, socket_path, *extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "start",
         "--cache-dir", cache_dir, "--socket", socket_path, *extra],
        env=_env(cache_dir),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


@pytest.fixture()
def socket_path():
    # AF_UNIX socket paths are length-limited (~108 bytes); pytest's
    # tmp_path can exceed that, so sockets live in a short /tmp dir.
    scratch = tempfile.mkdtemp(prefix="repro-serve-")
    return os.path.join(scratch, "serve.sock")


def test_sigterm_drains_server_to_143(tmp_path, socket_path):
    proc = _start_server(str(tmp_path), socket_path)
    try:
        wait_for_server(socket_path, timeout=20.0)
        assert ServeClient(socket_path, timeout=5.0).ping()["ok"]
        proc.send_signal(signal.SIGTERM)
        output = proc.communicate(timeout=30)[0]
    finally:
        if proc.poll() is None:  # pragma: no cover — hung server
            proc.kill()
            proc.wait()
    assert proc.returncode == 143, output
    assert "draining" in output
    assert not os.path.exists(socket_path)  # socket cleaned up


def test_sigint_cancels_and_exits_130(tmp_path, socket_path):
    proc = _start_server(str(tmp_path), socket_path)
    try:
        wait_for_server(socket_path, timeout=20.0)
        proc.send_signal(signal.SIGINT)
        output = proc.communicate(timeout=30)[0]
    finally:
        if proc.poll() is None:  # pragma: no cover — hung server
            proc.kill()
            proc.wait()
    assert proc.returncode == 130, output
    assert "SIGINT" in output


def test_second_server_refuses_a_live_socket(tmp_path, socket_path):
    proc = _start_server(str(tmp_path), socket_path)
    try:
        wait_for_server(socket_path, timeout=20.0)
        rival = _start_server(str(tmp_path), socket_path)
        rival_out = rival.communicate(timeout=30)[0]
        assert rival.returncode != 0
        assert "already listening" in rival_out
        # the incumbent is unharmed
        assert ServeClient(socket_path, timeout=5.0).ping()["ok"]
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover — hung server
            proc.kill()
            proc.wait()


@pytest.mark.slow
def test_chaos_kill_server_fleet_survives(tmp_path, monkeypatch):
    """The full control-plane crash proof, as CI's serve-smoke runs it:
    SIGKILL the serving orchestrator after its 3rd journal record, and
    require adoption with zero re-executed units and a bit-identical
    sealed digest, then backpressure + SIGTERM drain."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "unused"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "chaos", "serve",
         "--kill-server", "3", "--job", "fleet",
         "--nodes", "8", "--seconds", "30", "--workers", "2"],
        env=_env(str(tmp_path / "unused")),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "re-executed=0" in proc.stdout
    assert "[chaos: OK" in proc.stdout
    assert "matches uninterrupted run" in proc.stdout
    assert "SIGTERM → exit 143" in proc.stdout