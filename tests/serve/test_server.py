"""Control-plane integration tests, server in-thread, client blocking.

Each test runs a real :class:`ServeServer` event loop in a daemon
thread against a throwaway cache root and drives it through the real
socket with the blocking client — the same wire path ``repro serve``
uses, minus process boundaries (the subprocess + SIGKILL variants live
in the ``repro chaos serve`` harness and CI's serve-smoke job).
"""

import asyncio
import os
import tempfile
import threading
import time

import pytest

from repro.experiments.driver import FleetDriver
from repro.fleet.config import FleetConfig
from repro.journal.pipelines import fleet_payload, open_fleet_journal
from repro.journal.registry import inspect_run
from repro.journal.run import runs_root
from repro.serve.client import ServeClient, wait_for_server
from repro.serve.server import ServeServer

QUICK = FleetConfig(n_nodes=4, agent="overclock", seed=5, duration_s=10)

#: Effectively-infinite fleet: the cancel/backpressure tests need a job
#: that is still running when the assertion fires.
LONG = FleetConfig(n_nodes=16, agent="overclock", seed=5, duration_s=3600)


class ServerThread:
    """One in-thread server; sockets under a short /tmp dir (AF_UNIX
    paths are length-limited, pytest tmp_path is not)."""

    def __init__(self, cache_root, **kwargs):
        scratch = tempfile.mkdtemp(prefix="repro-serve-")
        self.socket_path = os.path.join(scratch, "serve.sock")
        self.server = ServeServer(
            cache_root=str(cache_root),
            socket_path=self.socket_path,
            **kwargs,
        )
        self.exit_code = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.exit_code = asyncio.run(self.server.run())

    def start(self):
        self.thread.start()
        wait_for_server(self.socket_path, timeout=15.0)
        return ServeClient(self.socket_path, timeout=30.0)

    def join(self, timeout=60.0):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "server did not shut down"
        return self.exit_code


@pytest.fixture()
def cache_root(tmp_path):
    return str(tmp_path / "serve-cache")


@pytest.fixture()
def server_thread(cache_root):
    started = []

    def factory(**kwargs):
        st = ServerThread(cache_root, **kwargs)
        started.append(st)
        return st

    yield factory
    for st in started:
        if st.thread.is_alive():
            for job in st.server.jobs.values():
                job.request_cancel("teardown")
            try:
                ServeClient(st.socket_path, timeout=5.0).drain()
            except Exception:
                pass
            st.thread.join(30.0)


def test_ping_status_and_unknown_verbs(server_thread):
    client = server_thread().start()
    reply = client.ping()
    assert reply["ok"] and reply["server"] == "repro-serve"
    assert reply["pid"] == os.getpid()
    assert client.status() == {"ok": True, "jobs": []}
    assert "unknown job" in client.status("job-9999")["error"]
    assert "unknown verb" in client.request({"verb": "frobnicate"})["error"]
    assert "unknown verb" in client.request({"hello": 1})["error"]


def test_submit_runs_to_sealed_digest_and_streams_events(server_thread):
    baseline = FleetDriver(QUICK, workers=2).run().digest()
    client = server_thread().start()
    reply = client.submit("fleet", fleet_payload(QUICK), workers=2)
    assert reply["ok"], reply
    events = list(client.watch(reply["job_id"]))
    kinds = [e["event"] for e in events]
    assert kinds[0] == "queued"
    assert kinds[-1] == "done"
    assert "started" in kinds and "sealed" in kinds
    sealed = next(e for e in events if e["event"] == "sealed")
    assert kinds.count("unit") == sealed["progress"]["total"]
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    done = events[-1]
    assert done["digest"] == baseline
    info = inspect_run(client.request({"verb": "ping"})["cache_root"],
                       reply["run_id"])
    assert info is not None and info.status == "sealed"
    assert info.sealed_digest == baseline


def test_resubmit_of_sealed_run_replays_everything(server_thread):
    client = server_thread().start()
    first = client.submit("fleet", fleet_payload(QUICK), workers=2)
    assert client.wait(first["job_id"])["status"] == "done"
    again = client.submit("fleet", fleet_payload(QUICK), workers=2)
    assert again["run_id"] == first["run_id"]
    assert again["job_id"] != first["job_id"]  # terminal → new job
    job = client.wait(again["job_id"])
    assert job["status"] == "done"
    assert job["counters"]["replayed"] == job["counters"]["total"]
    assert job["counters"]["executed"] == 0


def test_duplicate_active_submission_deduplicates(server_thread):
    client = server_thread().start()
    first = client.submit("fleet", fleet_payload(LONG), workers=2)
    dup = client.submit("fleet", fleet_payload(LONG), workers=2)
    assert dup["ok"] and dup.get("deduplicated") is True
    assert dup["job_id"] == first["job_id"]
    metrics = client.metrics()["metrics"]
    assert metrics["jobs"]["deduplicated"] == 1
    client.cancel(first["job_id"])
    client.wait(first["job_id"])


def test_invalid_submission_is_rejected_not_queued(server_thread):
    client = server_thread().start()
    reply = client.submit("mystery", {"x": 1})
    assert reply["ok"] is False and "invalid submission" in reply["error"]
    reply = client.submit("fleet", {"nonsense": True})
    assert reply["ok"] is False
    metrics = client.metrics()["metrics"]
    assert metrics["jobs"]["invalid"] == 2
    assert metrics["jobs"]["submitted"] == 0


def test_full_queue_gets_explicit_backpressure(server_thread):
    client = server_thread(queue_limit=1).start()
    replies = [
        client.submit(
            "fleet",
            fleet_payload(FleetConfig(
                n_nodes=16, agent="overclock", seed=100 + i,
                duration_s=3600,
            )),
            workers=2,
        )
        for i in range(3)
    ]
    rejected = [r for r in replies if r.get("backpressure")]
    assert rejected, f"no backpressure in {replies}"
    reply = rejected[0]
    assert reply["ok"] is False
    assert reply["retry_after_s"] > 0
    assert reply["queue_limit"] == 1
    assert "admission queue full" in reply["error"]
    assert client.metrics()["metrics"]["jobs"]["rejected"] >= 1
    for r in replies:
        if r.get("ok"):
            client.cancel(r["job_id"])


def test_cancel_leaves_run_resumable_and_releases_lease(
    server_thread, cache_root
):
    client = server_thread().start()
    reply = client.submit("fleet", fleet_payload(LONG), workers=2)
    job_id = reply["job_id"]
    # wait until it is actually running (journal open, lease held)
    deadline = 50
    while client.status(job_id)["job"]["status"] == "queued" and deadline:
        deadline -= 1
        time.sleep(0.1)
    cancel = client.cancel(job_id)
    assert cancel["ok"]
    job = client.wait(job_id, timeout=60.0)
    assert job["status"] == "cancelled"
    info = inspect_run(cache_root, reply["run_id"])
    assert info is not None
    assert info.status == "interrupted"  # resumable, not sealed
    leases = [
        name for name in os.listdir(runs_root(cache_root))
        if name.endswith(".lease")
    ]
    assert leases == []  # journal closed on the way out


def test_cancel_queued_job_never_starts(server_thread):
    client = server_thread(queue_limit=4).start()
    running = client.submit("fleet", fleet_payload(LONG), workers=2)
    queued = client.submit(
        "fleet",
        fleet_payload(FleetConfig(
            n_nodes=16, agent="overclock", seed=6, duration_s=3600,
        )),
        workers=2,
    )
    reply = client.cancel(queued["job_id"])
    assert reply["ok"] and reply["status"] == "cancelled"
    assert client.status(queued["job_id"])["job"]["started_at"] is None
    assert "already" in client.cancel(queued["job_id"])["error"]
    client.cancel(running["job_id"])
    client.wait(running["job_id"])


def test_deadline_expires_running_job(server_thread, cache_root):
    client = server_thread().start()
    reply = client.submit(
        "fleet", fleet_payload(LONG), workers=2, deadline_s=1.5
    )
    job = client.wait(reply["job_id"], timeout=90.0)
    assert job["status"] == "expired"
    info = inspect_run(cache_root, reply["run_id"])
    assert info is not None and info.status == "interrupted"


def test_drain_releases_leases_and_second_server_adopts(
    server_thread, cache_root
):
    """Satellite: drain → leases released → a fresh server adopts an
    interrupted run immediately and finishes it bit-identically with
    zero re-executed units."""
    baseline = FleetDriver(QUICK, workers=1).run().digest()

    # Manufacture an interrupted run: journal two units, then "die"
    # (close without sealing — the lease is released exactly as a dead
    # pid's lease is stealable).
    class _Die(Exception):
        pass

    journal = open_fleet_journal(cache_root, QUICK, 1)
    run_id = journal.run_id
    done_before = 0
    try:
        original = journal.record_done

        def die_after_two(unit_id, payload, wall_s, executed=True):
            nonlocal done_before
            original(unit_id, payload, wall_s, executed=executed)
            done_before += 1
            if done_before >= 2:
                raise _Die()

        journal.record_done = die_after_two
        with pytest.raises(_Die):
            FleetDriver(QUICK, workers=1, journal=journal).run()
    finally:
        journal.close()
    assert inspect_run(cache_root, run_id).status == "interrupted"

    st = server_thread(default_workers=1)
    client = st.start()
    job = client.find_by_run(run_id)
    assert job is not None, "server did not adopt the interrupted run"
    assert job["adopted"] is True
    job = client.wait(job["job_id"], timeout=90.0)
    assert job["status"] == "done"
    assert job["digest"] == baseline
    assert job["counters"]["replayed"] == done_before  # 0 re-executed
    assert client.metrics()["metrics"]["jobs"]["adopted"] == 1

    assert client.drain()["ok"]
    assert st.join() == 0
    leases = [
        name for name in os.listdir(runs_root(cache_root))
        if name.endswith(".lease")
    ]
    assert leases == []
    # ...which is exactly why a second server can start immediately:
    st2 = server_thread()
    client2 = st2.start()
    assert client2.ping()["ok"]
    assert client2.metrics()["metrics"]["jobs"]["adopted"] == 0  # sealed
    assert client2.drain()["ok"]
    assert st2.join() == 0


def test_drain_marks_queued_jobs_drained(server_thread):
    st = server_thread(queue_limit=4)
    client = st.start()
    running = client.submit("fleet", fleet_payload(LONG), workers=2)
    queued = client.submit(
        "fleet",
        fleet_payload(FleetConfig(
            n_nodes=16, agent="overclock", seed=7, duration_s=3600,
        )),
        workers=2,
    )
    # drain first — it immediately marks the queued job drained and
    # waits for the in-flight one, which we then cancel to let the
    # server finish its shutdown
    assert client.drain()["ok"]
    client.cancel(running["job_id"])
    assert st.join() == 0
    drained = st.server.jobs[queued["job_id"]]
    assert drained.status == "drained"
    assert drained.started_at is None
    assert st.server.jobs[running["job_id"]].status == "cancelled"


def test_metrics_snapshot_shape(server_thread):
    client = server_thread().start()
    reply = client.submit("fleet", fleet_payload(QUICK), workers=2)
    client.wait(reply["job_id"])
    metrics = client.metrics()["metrics"]
    assert metrics["queue"]["limit"] == 8
    assert metrics["queue"]["accepting"] is True
    assert metrics["jobs"]["by_status"] == {"done": 1}
    assert metrics["jobs"]["submitted"] == 1
    assert metrics["events"]["emitted"] > 0
    pool = metrics["pool"]
    assert pool["size"] >= 1
    assert pool["submitted"] >= 1 and pool["completed"] >= 1
    journal = metrics["journal"]
    assert journal["total"] >= 1
    assert journal["executed"] + journal["replayed"] == journal["total"]


def test_metrics_prometheus_exposition(server_thread):
    client = server_thread().start()
    reply = client.submit("fleet", fleet_payload(QUICK), workers=2)
    client.wait(reply["job_id"])
    prom = client.metrics(fmt="prometheus")
    assert prom["ok"]
    assert prom["format"] == "prometheus"
    text = prom["text"]
    assert "# TYPE repro_queue_depth gauge" in text
    assert "repro_jobs_submitted 1" in text
    assert "repro_queue_accepting 1" in text
    assert "repro_pool_submitted" in text
    # The default JSON shape is unchanged by the format knob.
    assert client.metrics()["metrics"]["jobs"]["submitted"] == 1


def test_watch_unknown_job_and_late_watch_replays_backlog(server_thread):
    client = server_thread().start()
    with pytest.raises(ValueError, match="unknown job"):
        list(client.watch("job-9999"))
    reply = client.submit("fleet", fleet_payload(QUICK), workers=2)
    client.wait(reply["job_id"])
    # subscribe after completion: the retained backlog still replays
    events = list(client.watch(reply["job_id"]))
    assert events[-1]["event"] == "done"
    # resume from the middle: only newer events arrive
    tail = list(client.watch(reply["job_id"], since=events[-2]["seq"]))
    assert [e["seq"] for e in tail] == [events[-1]["seq"]]
