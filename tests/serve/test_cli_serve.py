"""``repro serve`` / ``repro chaos serve`` argument surface, in-process."""

import os
import tempfile

import pytest

from repro.cli import main


def _no_server_socket():
    return os.path.join(
        tempfile.mkdtemp(prefix="repro-serve-"), "none.sock"
    )


def test_serve_ping_without_server_is_unavailable(capsys):
    sock = _no_server_socket()
    assert main(["serve", "ping", "--socket", sock]) == 69
    assert "cannot connect" in capsys.readouterr().out


def test_serve_status_without_server_is_unavailable(capsys):
    sock = _no_server_socket()
    assert main(["serve", "status", "--socket", sock]) == 69


def test_serve_submit_without_server_is_unavailable(capsys):
    sock = _no_server_socket()
    assert main(
        ["serve", "submit", "fleet", "--nodes", "2", "--seconds", "10",
         "--socket", sock]
    ) == 69


def test_chaos_serve_requires_kill_server():
    with pytest.raises(SystemExit, match="--kill-server"):
        main(["chaos", "serve"])


def test_chaos_serve_sweep_requires_spec():
    with pytest.raises(SystemExit, match="--spec"):
        main(["chaos", "serve", "--kill-server", "3", "--job", "sweep"])


def test_kill_server_flag_rejected_for_other_targets():
    with pytest.raises(SystemExit, match="only meaningful"):
        main(["chaos", "fleet", "--kill-server", "3"])


def test_serve_start_rejects_bad_queue_limit(tmp_path):
    with pytest.raises(ValueError, match="queue_limit"):
        from repro.serve.server import ServeServer

        ServeServer(cache_root=str(tmp_path), queue_limit=0)
