"""Job model unit tests: admission validation, identity, the tap."""

import pytest

from repro.fleet.config import FleetConfig
from repro.journal.pipelines import fleet_payload, open_fleet_journal
from repro.journal.run import derive_run_id
from repro.serve.jobs import (
    JobCancelled,
    JournalTap,
    job_from_submission,
)

FLEET_CONFIG = fleet_payload(
    FleetConfig(n_nodes=4, agent="overclock", seed=3, duration_s=10)
)


def _submit(kind="fleet", config=None, **extra):
    message = {"kind": kind, "config": config or dict(FLEET_CONFIG)}
    message.update(extra)
    return job_from_submission("job-0001", message)


def test_run_id_matches_journal_identity(tmp_path):
    job = _submit()
    assert job.run_id == derive_run_id("fleet", job.payload)
    journal = open_fleet_journal(
        str(tmp_path), FleetConfig(
            n_nodes=4, agent="overclock", seed=3, duration_s=10
        ), workers=2,
    )
    try:
        assert journal.run_id == job.run_id
    finally:
        journal.close()


def test_same_config_same_run_id_different_seed_differs():
    a = _submit()
    b = _submit()
    assert a.run_id == b.run_id
    other = dict(FLEET_CONFIG, seed=99)
    assert _submit(config=other).run_id != a.run_id


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown job kind"):
        _submit(kind="mystery")


def test_missing_config_rejected():
    with pytest.raises(ValueError, match="'config'"):
        job_from_submission("job-0001", {"kind": "fleet"})


def test_malformed_fleet_config_rejected():
    with pytest.raises(ValueError):
        _submit(config={"nonsense": True})


def test_unknown_reproduce_artifact_rejected():
    with pytest.raises(ValueError, match="unknown artifacts"):
        _submit(
            kind="reproduce",
            config={"artifacts": ["no_such_table"], "scale": 1.0},
        )


def test_bad_workers_and_deadline_rejected():
    with pytest.raises(ValueError, match="workers"):
        _submit(workers=0)
    with pytest.raises(ValueError, match="deadline"):
        _submit(deadline_s=-1)


def test_tap_delegates_and_emits_after_durable_write(tmp_path):
    journal = open_fleet_journal(
        str(tmp_path), FleetConfig(
            n_nodes=2, agent="overclock", seed=0, duration_s=10
        ), workers=1,
    )
    job = _submit()
    events = []
    tap = JournalTap(
        journal, job, lambda kind, **fields: events.append((kind, fields))
    )
    try:
        unit = journal.units[0]
        tap.record_dispatched(unit, 1)
        tap.record_done(unit, {"v": 1}, 0.01, executed=True)
        assert journal.stats.executed == 1  # delegation reached journal
        assert events[0][0] == "unit"
        assert events[0][1]["progress"]["done"] == 1
        # attribute pass-through
        assert tap.run_id == journal.run_id
        assert len(tap.units) == len(journal.units)
    finally:
        journal.close()


def test_tap_raises_job_cancelled_between_units(tmp_path):
    journal = open_fleet_journal(
        str(tmp_path), FleetConfig(
            n_nodes=2, agent="overclock", seed=0, duration_s=10
        ), workers=1,
    )
    job = _submit()
    tap = JournalTap(journal, job, lambda kind, **fields: None)
    try:
        job.request_cancel("client")
        with pytest.raises(JobCancelled):
            tap.record_dispatched(journal.units[0], 1)
        assert job.cancel_reason == "client"
    finally:
        journal.close()
