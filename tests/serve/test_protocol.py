"""Wire-protocol unit tests: framing, bounds, reply shapes."""

import pytest

from repro.serve.protocol import (
    MAX_LINE,
    ProtocolError,
    backpressure,
    decode,
    encode,
    error,
    event,
    ok,
)


def test_encode_decode_round_trip():
    message = {"verb": "submit", "kind": "fleet", "config": {"n": 4}}
    line = encode(message)
    assert line.endswith(b"\n")
    assert decode(line) == message


def test_encode_is_deterministic():
    assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})


def test_encode_rejects_oversized_message():
    with pytest.raises(ProtocolError, match="exceeds"):
        encode({"blob": "x" * MAX_LINE})


def test_encode_rejects_unserializable_message():
    with pytest.raises(ProtocolError, match="unserializable"):
        encode({"socket": object()})


def test_decode_rejects_oversized_line():
    with pytest.raises(ProtocolError, match="exceeds"):
        decode(b"x" * (MAX_LINE + 1))


def test_decode_rejects_non_json():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode(b"not json\n")


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError, match="expected a JSON object"):
        decode(b"[1, 2]\n")


def test_ok_and_error_shapes():
    assert ok(job_id="j1") == {"ok": True, "job_id": "j1"}
    reply = error("nope", status="done")
    assert reply["ok"] is False
    assert reply["error"] == "nope"
    assert reply["status"] == "done"


def test_backpressure_reply_is_branchable():
    reply = backpressure(retry_after_s=2.5, depth=8, limit=8)
    assert reply["ok"] is False
    assert reply["backpressure"] is True
    assert reply["retry_after_s"] == 2.5
    assert reply["queue_depth"] == 8
    assert reply["queue_limit"] == 8
    assert "admission queue full" in reply["error"]


def test_event_shape():
    message = event("job-1", 3, "unit", {"unit": "u0"})
    assert message == {
        "event": "unit", "job_id": "job-1", "seq": 3, "unit": "u0",
    }
