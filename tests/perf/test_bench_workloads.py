"""The workloads bench suite and the report-comparison tooling."""

import json

import pytest

import repro.perf.legacy_workloads as legacy
from repro.cli import main
from repro.perf import compare_reports, render_comparison
from repro.perf.harness import run_workloads_microbenchmarks
from repro.perf.microbench_workloads import (
    LIVE_WORKLOADS,
    WORKLOADS_MICROBENCHMARKS,
    run_workloads_microbench,
)

TINY = 0.02  # enough events to exercise every path, small enough for CI


def test_every_scenario_runs_against_both_implementations():
    for name in WORKLOADS_MICROBENCHMARKS:
        for impl in (LIVE_WORKLOADS, legacy):
            result = run_workloads_microbench(name, impl, TINY, repeats=1)
            assert result.events > 0
            assert result.wall_s > 0.0
            assert result.name == name


def test_suite_report_structure():
    section = run_workloads_microbenchmarks(scale=TINY, repeats=1)
    assert set(WORKLOADS_MICROBENCHMARKS) <= set(section)
    assert "geomean_speedup" in section
    for name in WORKLOADS_MICROBENCHMARKS:
        entry = section[name]
        assert entry["optimized"]["events"] == entry["legacy"]["events"]
        assert entry["speedup"] > 0


def _fake_report(speedups, suite="workloads"):
    return {
        "schema": 2,
        "suite": suite,
        "microbench": {
            name: {
                "optimized": {"events": 1, "wall_s": 1.0,
                              "ns_per_event": 1.0, "events_per_sec": 1.0},
                "legacy": {"events": 1, "wall_s": speedup,
                           "ns_per_event": speedup,
                           "events_per_sec": 1.0 / speedup},
                "speedup": speedup,
            }
            for name, speedup in speedups.items()
        },
    }


def test_compare_reports_flags_ratio_regression():
    baseline = _fake_report({"a": 2.0, "b": 3.0})
    fine = _fake_report({"a": 1.9, "b": 2.6})
    assert compare_reports(fine, baseline, max_regression=0.25) == []
    regressed = _fake_report({"a": 1.0, "b": 3.0})
    problems = compare_reports(regressed, baseline, max_regression=0.25)
    assert len(problems) == 1 and "'a'" in problems[0]


def test_compare_reports_flags_not_all_hit():
    report = _fake_report({"a": 2.0})
    report["end_to_end"] = {
        "cache_warm_reproduce": {"digest_ok": True, "all_hit": False}
    }
    problems = compare_reports(report, _fake_report({"a": 2.0}))
    assert any("all-hit" in problem for problem in problems)


def test_render_comparison_table_contents():
    baseline = _fake_report({"alpha": 2.0, "beta": 4.0})
    new = _fake_report({"alpha": 1.0, "beta": 4.0})
    text = render_comparison(new, baseline, "new.json", "base.json")
    assert "alpha" in text and "beta" in text
    assert "0.50" in text  # alpha's ratio
    assert "1.00" in text  # beta's ratio
    assert "geomean ratio" in text


def test_render_comparison_warns_on_suite_mismatch():
    text = render_comparison(
        _fake_report({"a": 1.0}, suite="kernel"),
        _fake_report({"a": 1.0}, suite="ml"),
    )
    assert "WARNING" in text


# -- the bench --compare CLI -------------------------------------------------


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def test_cli_compare_passes_within_gate(tmp_path, capsys):
    baseline = _write(tmp_path, "base.json", _fake_report({"a": 2.0}))
    new = _write(tmp_path, "new.json", _fake_report({"a": 1.8}))
    assert main(["bench", "--compare", new, baseline]) == 0
    out = capsys.readouterr().out
    assert "bench compare" in out
    assert "no regression" in out


def test_cli_compare_fails_past_gate(tmp_path, capsys):
    baseline = _write(tmp_path, "base.json", _fake_report({"a": 2.0}))
    new = _write(tmp_path, "new.json", _fake_report({"a": 1.0}))
    assert main(["bench", "--compare", new, baseline]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.err


def test_cli_compare_honors_max_regression(tmp_path):
    baseline = _write(tmp_path, "base.json", _fake_report({"a": 2.0}))
    new = _write(tmp_path, "new.json", _fake_report({"a": 1.2}))
    assert main(["bench", "--compare", new, baseline]) == 1
    assert main([
        "bench", "--compare", new, baseline, "--max-regression", "0.5"
    ]) == 0


def test_cli_compare_missing_file_raises():
    with pytest.raises(OSError):
        main(["bench", "--compare", "/nonexistent/a.json",
              "/nonexistent/b.json"])


def test_compare_reports_geomean_gate_tolerates_single_noise():
    # One benchmark dips 10% while the others hold: the per-benchmark
    # gate fires at 5%, the geomean gate (the tracer-overhead CI shape)
    # averages the noise out and passes.
    baseline = _fake_report({"a": 2.0, "b": 3.0, "c": 4.0})
    noisy = _fake_report({"a": 1.8, "b": 3.0, "c": 4.1})
    assert compare_reports(noisy, baseline, max_regression=0.05)
    assert compare_reports(
        noisy, baseline, max_regression=0.05, gate="geomean"
    ) == []
    # A real across-the-board regression still fails the geomean gate.
    slower = _fake_report({"a": 1.8, "b": 2.7, "c": 3.6})
    problems = compare_reports(
        slower, baseline, max_regression=0.05, gate="geomean"
    )
    assert len(problems) == 1 and "geomean" in problems[0]
