"""The ML bench suite: scenarios, report schema, makespan model, gates."""

import pytest

import repro.perf.legacy_ml as legacy_ml
from repro.perf import build_ml_report, compare_reports, render_report
from repro.perf.harness import _lpt_makespan, run_end_to_end
from repro.perf.microbench_ml import (
    LIVE_ML,
    ML_MICROBENCHMARKS,
    run_ml_microbench,
)

#: Tiny scale so the whole module runs in well under a second.
SCALE = 0.02


@pytest.mark.parametrize("name", sorted(ML_MICROBENCHMARKS))
@pytest.mark.parametrize(
    "impl", [LIVE_ML, legacy_ml], ids=["optimized", "legacy"]
)
def test_ml_scenarios_run_on_both_implementations(name, impl):
    result = run_ml_microbench(name, impl, scale=SCALE, repeats=1)
    assert result.events > 0
    assert result.wall_s > 0
    assert result.ns_per_event > 0


def test_quick_ml_report_schema():
    report = build_ml_report(quick=True, repeats=1)
    assert report["suite"] == "ml"
    assert report["quick"] is True
    assert "end_to_end" not in report
    micro = report["microbench"]
    assert set(ML_MICROBENCHMARKS) <= set(micro)
    assert micro["geomean_speedup"] > 0
    rendered = render_report(report)
    assert "ml suite" in rendered
    assert "csc_predict" in rendered


def test_lpt_makespan_models_the_schedule():
    # One 10 s straggler and eight 1 s jobs on 4 workers: the straggler
    # owns a worker; the rest pack onto the other three.
    assert _lpt_makespan([10.0] + [1.0] * 8, 4) == pytest.approx(10.0)
    # Serial degenerates to the sum.
    assert _lpt_makespan([3.0, 2.0, 1.0], 1) == pytest.approx(6.0)
    # More workers than jobs degenerates to the longest job.
    assert _lpt_makespan([3.0, 2.0], 8) == pytest.approx(3.0)


def test_compare_reports_gates_ml_digest_check():
    baseline = {"microbench": {"csc_predict": {"speedup": 2.0}}}
    bad = {
        "microbench": {"csc_predict": {"speedup": 2.0}},
        "end_to_end": {"sharded_golden_artifacts": {"digest_ok": False}},
    }
    problems = compare_reports(bad, baseline)
    assert any("sharded_golden_artifacts" in p for p in problems)


def test_kernel_e2e_reports_artifact_walls_in_milliseconds():
    """The tables finish in well under a second; the per-artifact walls
    must survive rounding (the seed report flattened them to 0.0)."""
    entry = run_end_to_end()["reproduce_subset"]
    assert "runs" not in entry
    walls = entry["runs_ms"]
    assert set(walls) == {"table1", "table2", "fig6-left"}
    assert all(wall > 0.0 for wall in walls.values())
