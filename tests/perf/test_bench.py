"""The repro bench harness: scenarios, report schema, regression gate."""

import json

import pytest

import repro.perf.legacy as legacy_impl
import repro.sim as live_impl
from repro.perf import build_report, compare_reports, render_report, write_report
from repro.perf.microbench import MICROBENCHMARKS, run_microbench

#: Tiny scale so the whole module runs in well under a second.
SCALE = 0.02


@pytest.mark.parametrize("name", sorted(MICROBENCHMARKS))
@pytest.mark.parametrize(
    "impl", [live_impl, legacy_impl], ids=["optimized", "legacy"]
)
def test_microbench_scenarios_run_on_both_kernels(name, impl):
    result = run_microbench(name, impl, scale=SCALE, repeats=1)
    assert result.events > 0
    assert result.wall_s > 0
    assert result.ns_per_event > 0


def test_legacy_kernel_is_behaviorally_equivalent():
    """Same workload, same simulated outcome, on both implementations."""
    outcomes = []
    for impl in (live_impl, legacy_impl):
        kernel = impl.Kernel()
        queue = impl.SimQueue(kernel, capacity=1)
        log = []

        def producer():
            for i in range(20):
                queue.put(i)
                yield 30

        def consumer():
            while len(log) < 20:
                item = yield from queue.get(timeout_us=100)
                if item is not impl.QUEUE_TIMEOUT:
                    log.append((kernel.now, item))

        kernel.spawn(producer(), name="p")
        kernel.spawn(consumer(), name="c")
        kernel.run()
        outcomes.append((log, kernel.now))
    assert outcomes[0] == outcomes[1]


def test_quick_report_schema_and_roundtrip(tmp_path):
    report = build_report(quick=True, repeats=1)
    assert report["quick"] is True
    assert "end_to_end" not in report
    micro = report["microbench"]
    assert set(MICROBENCHMARKS) <= set(micro)
    assert micro["geomean_speedup"] > 0
    for name in MICROBENCHMARKS:
        entry = micro[name]
        assert entry["speedup"] > 0
        for side in ("optimized", "legacy"):
            assert entry[side]["events"] > 0
    path = tmp_path / "bench.json"
    write_report(report, str(path))
    assert json.loads(path.read_text()) == report
    assert "repro bench" in render_report(report)


def _fake_report(speedups, digest_ok=None):
    report = {
        "schema": 1,
        "microbench": {
            name: {"speedup": value} for name, value in speedups.items()
        },
    }
    if digest_ok is not None:
        report["end_to_end"] = {"fleet_mixed_6x15": {"digest_ok": digest_ok}}
    return report


def test_compare_reports_passes_within_tolerance():
    baseline = _fake_report({"a": 4.0, "b": 2.0})
    new = _fake_report({"a": 3.2, "b": 1.6})  # exactly -20%
    assert compare_reports(new, baseline, max_regression=0.25) == []


def test_compare_reports_flags_regression_and_missing():
    baseline = _fake_report({"a": 4.0, "b": 2.0})
    new = _fake_report({"a": 2.9})  # -27.5% and 'b' missing
    problems = compare_reports(new, baseline, max_regression=0.25)
    assert len(problems) == 2
    assert any("regressed" in p for p in problems)
    assert any("missing" in p for p in problems)


def test_compare_reports_flags_digest_mismatch():
    baseline = _fake_report({"a": 1.0})
    new = _fake_report({"a": 1.0}, digest_ok=False)
    problems = compare_reports(new, baseline)
    assert any("digest" in p for p in problems)
