"""The repro bench harness: scenarios, report schema, regression gate."""

import json

import pytest

import repro.perf.legacy as legacy_impl
import repro.sim as live_impl
from repro.perf import (
    build_report,
    compare_reports,
    compare_warnings,
    merge_suite_reports,
    render_report,
    write_report,
)
from repro.perf.microbench import MICROBENCHMARKS, run_microbench

#: Tiny scale so the whole module runs in well under a second.
SCALE = 0.02


@pytest.mark.parametrize("name", sorted(MICROBENCHMARKS))
@pytest.mark.parametrize(
    "impl", [live_impl, legacy_impl], ids=["optimized", "legacy"]
)
def test_microbench_scenarios_run_on_both_kernels(name, impl):
    result = run_microbench(name, impl, scale=SCALE, repeats=1)
    assert result.events > 0
    assert result.wall_s > 0
    assert result.ns_per_event > 0


def test_legacy_kernel_is_behaviorally_equivalent():
    """Same workload, same simulated outcome, on both implementations."""
    outcomes = []
    for impl in (live_impl, legacy_impl):
        kernel = impl.Kernel()
        queue = impl.SimQueue(kernel, capacity=1)
        log = []

        def producer():
            for i in range(20):
                queue.put(i)
                yield 30

        def consumer():
            while len(log) < 20:
                item = yield from queue.get(timeout_us=100)
                if item is not impl.QUEUE_TIMEOUT:
                    log.append((kernel.now, item))

        kernel.spawn(producer(), name="p")
        kernel.spawn(consumer(), name="c")
        kernel.run()
        outcomes.append((log, kernel.now))
    assert outcomes[0] == outcomes[1]


def test_quick_report_schema_and_roundtrip(tmp_path):
    report = build_report(quick=True, repeats=1)
    assert report["quick"] is True
    assert "end_to_end" not in report
    micro = report["microbench"]
    assert set(MICROBENCHMARKS) <= set(micro)
    assert micro["geomean_speedup"] > 0
    for name in MICROBENCHMARKS:
        entry = micro[name]
        assert entry["speedup"] > 0
        for side in ("optimized", "legacy"):
            assert entry[side]["events"] > 0
    path = tmp_path / "bench.json"
    write_report(report, str(path))
    assert json.loads(path.read_text()) == report
    assert "repro bench" in render_report(report)


def _fake_report(speedups, digest_ok=None):
    report = {
        "schema": 1,
        "microbench": {
            name: {"speedup": value} for name, value in speedups.items()
        },
    }
    if digest_ok is not None:
        report["end_to_end"] = {"fleet_mixed_6x15": {"digest_ok": digest_ok}}
    return report


def test_compare_reports_passes_within_tolerance():
    baseline = _fake_report({"a": 4.0, "b": 2.0})
    new = _fake_report({"a": 3.2, "b": 1.6})  # exactly -20%
    assert compare_reports(new, baseline, max_regression=0.25) == []


def test_compare_reports_flags_regression_but_warns_on_missing():
    baseline = _fake_report({"a": 4.0, "b": 2.0})
    new = _fake_report({"a": 2.9})  # -27.5%, and 'b' only in baseline
    problems = compare_reports(new, baseline, max_regression=0.25)
    # Only the genuine regression gates; the one-sided benchmark is a
    # warning, not a failure.
    assert len(problems) == 1
    assert "regressed" in problems[0]
    warnings = compare_warnings(new, baseline)
    assert any("only in the baseline" in w and "b" in w for w in warnings)


def test_compare_warnings_cover_both_sides_and_suite_mismatch():
    baseline = dict(_fake_report({"a": 1.0, "b": 2.0}), suite="kernel")
    new = dict(_fake_report({"a": 1.0, "c": 3.0}), suite="ml")
    warnings = compare_warnings(new, baseline)
    assert any("different suites" in w for w in warnings)
    assert any("only in the baseline" in w for w in warnings)
    assert any("only in the new" in w for w in warnings)
    assert compare_warnings(baseline, baseline) == []


def test_compare_reports_flags_digest_mismatch():
    baseline = _fake_report({"a": 1.0})
    new = _fake_report({"a": 1.0}, digest_ok=False)
    problems = compare_reports(new, baseline)
    assert any("digest" in p for p in problems)


def test_merge_suite_reports_namespaces_and_gates():
    merged = merge_suite_reports(
        {
            "kernel": {
                "microbench": {
                    "a": {"speedup": 4.0}, "geomean_speedup": 4.0,
                },
                "end_to_end": {"fleet": {"digest_ok": True}},
            },
            "ml": {
                "microbench": {
                    "b": {"speedup": 1.0}, "geomean_speedup": 1.0,
                },
            },
        }
    )
    assert merged["suite"] == "all"
    assert set(merged["microbench"]) == {
        "kernel/a", "ml/b", "geomean_speedup",
    }
    assert merged["microbench"]["geomean_speedup"] == 2.0  # sqrt(4*1)
    assert merged["suites"]["kernel"]["geomean_speedup"] == 4.0
    assert merged["end_to_end"] == {"kernel/fleet": {"digest_ok": True}}
    # The merged report is a valid compare_reports input.
    assert compare_reports(merged, merged) == []
    regressed = json.loads(json.dumps(merged))
    regressed["microbench"]["kernel/a"]["speedup"] = 1.0
    assert any(
        "kernel/a" in p for p in compare_reports(regressed, merged)
    )
