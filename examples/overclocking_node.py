"""Scenario: SmartOverclock managing a dynamic node (paper §5.1, §6.2).

Runs the paper's Synthetic batch workload side by side under four
policies — static 1.5/1.9/2.3 GHz and the learning agent — then prints
the Figure-1-style comparison, and demonstrates two safeguards live:

* invalid counter data injected mid-run (the Figure 2 failure), and
* the SRE ``CleanUp`` path terminating the agent.

Run:  python examples/overclocking_node.py
"""

from repro.agents.overclock import SmartOverclockAgent
from repro.node.cpu import CpuModel
from repro.node.faults import bad_ips_injector
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.synthetic import SyntheticBatchWorkload

DURATION_S = 600


def run_policy(label, freq=None, agent=False, inject_bad_data=False):
    kernel = Kernel()
    streams = RngStreams(seed=7)
    cpu = CpuModel(
        kernel, n_cores=8, nominal_freq_ghz=1.5,
        min_freq_ghz=1.5, max_freq_ghz=2.3,
    )
    workload = SyntheticBatchWorkload(
        kernel, cpu, period_us=100 * SEC
    ).start()
    agent_obj = None
    if agent:
        agent_obj = SmartOverclockAgent(kernel, cpu, streams.get("agent"))
        if inject_bad_data:
            agent_obj.reader.add_injector(
                bad_ips_injector(streams.get("fault"), probability=0.10)
            )
        agent_obj.start()
    elif freq is not None:
        cpu.set_frequency(freq)
    kernel.run(until=DURATION_S * SEC)
    perf = workload.performance()
    watts = cpu.snapshot().energy_joules / DURATION_S
    return label, perf.value, watts, agent_obj


def main():
    print(f"Synthetic batch workload, {DURATION_S}s simulated per policy\n")
    rows = [
        run_policy("static 1.5 GHz (nominal)", freq=1.5),
        run_policy("static 1.9 GHz", freq=1.9),
        run_policy("static 2.3 GHz", freq=2.3),
        run_policy("SmartOverclock", agent=True),
        run_policy("SmartOverclock + 10% bad IPS data", agent=True,
                   inject_bad_data=True),
    ]
    base_time, base_watts = rows[0][1], rows[0][2]
    print(f"{'policy':36s} {'batch time':>11s} {'norm perf':>9s} "
          f"{'power':>8s} {'norm power':>10s}")
    for label, batch_time, watts, agent in rows:
        print(
            f"{label:36s} {batch_time:9.1f}s  {base_time / batch_time:8.2f}x"
            f" {watts:6.1f}W  {watts / base_watts:8.2f}x"
        )
    agent = rows[3][3]
    stats = agent.runtime.stats()
    print(
        f"\nSmartOverclock runtime: {stats['epochs']} epochs, "
        f"{stats['actuations']} actions, "
        f"{stats['validation_failures']} readings discarded, "
        f"{stats['interceptions']} predictions intercepted"
    )
    injected = rows[4][3]
    print(
        "with injected bad data: "
        f"{injected.runtime.stats()['validation_failures']} readings "
        "discarded by ValidateData (the Figure 2 safeguard)"
    )
    agent.terminate()
    print("SRE CleanUp: agent terminated, node restored to nominal")


if __name__ == "__main__":
    main()
