"""Quickstart: build and run a tiny SOL agent end to end.

This example writes a complete (deliberately simple) learning agent
against the SOL API: a *power-cap watchdog* that learns a node's normal
power band online and trips a breaker when draw stays anomalous.  It
shows the full developer workflow from the paper's Listing 3:

1. implement the ``Model`` interface (collect/validate/commit/update/
   predict + the model safeguard),
2. implement the ``Actuator`` interface (act/assess/mitigate/cleanup),
3. hand both to the runtime with a ``Schedule``.

Run:  python examples/quickstart.py
"""

from repro.core import Actuator, Model, Prediction, Schedule, run_agent
from repro.ml.metrics import StreamingMeanVar
from repro.node.cpu import CpuModel
from repro.sim import Kernel, RngStreams
from repro.sim.units import MS, SEC
from repro.workloads.synthetic import SyntheticBatchWorkload


class PowerModel(Model):
    """Learns the node's normal power band; predicts an anomaly score."""

    def __init__(self, kernel, cpu):
        self.kernel = kernel
        self.cpu = cpu
        self._last = cpu.snapshot()
        self._stats = StreamingMeanVar()
        self._latest_watts = 0.0

    def collect_data(self):
        snapshot = self.cpu.snapshot()
        elapsed = (snapshot.time_us - self._last.time_us) / SEC
        watts = (
            (snapshot.energy_joules - self._last.energy_joules) / elapsed
            if elapsed > 0
            else 0.0
        )
        self._last = snapshot
        return watts

    def validate_data(self, watts):
        return 0.0 <= watts < 10_000.0  # range check: a node is not a megawatt

    def commit_data(self, time_us, watts):
        self._latest_watts = watts

    def update_model(self):
        self._stats.observe(self._latest_watts)

    def model_predict(self):
        if self._stats.count < 10:
            return None  # not enough history: short-circuit to default
        sigma = max(self._stats.std, 1.0)
        score = abs(self._latest_watts - self._stats.mean) / sigma
        return Prediction.fresh(self.kernel, score, ttl_us=3 * SEC)

    def default_predict(self):
        return Prediction.fresh(
            self.kernel, 0.0, ttl_us=3 * SEC, is_default=True
        )

    def assess_model(self):
        return self._stats.count >= 1  # healthy once it has seen anything


class PowerActuator(Actuator):
    """Raises an alert after sustained anomalies; idempotent cleanup."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.alerts = []
        self._consecutive = 0

    def take_action(self, prediction):
        if prediction is None or prediction.value < 3.0:
            self._consecutive = 0
            return
        self._consecutive += 1
        if self._consecutive >= 3:
            self.alerts.append(self.kernel.now)
            self._consecutive = 0

    def assess_performance(self):
        # A watchdog that cries wolf is itself a problem.
        recent = [t for t in self.alerts if self.kernel.now - t < 60 * SEC]
        return len(recent) < 10

    def mitigate(self):
        self._consecutive = 0

    def clean_up(self):
        self._consecutive = 0


def main():
    kernel = Kernel()
    streams = RngStreams(seed=42)
    cpu = CpuModel(kernel, n_cores=8, nominal_freq_ghz=1.5)
    workload = SyntheticBatchWorkload(
        kernel, cpu, period_us=30 * SEC
    ).start()

    schedule = Schedule(
        data_collect_interval_us=500 * MS,
        min_data_per_epoch=2,
        max_epoch_time_us=2 * SEC,
        max_actuation_delay_us=5 * SEC,
        assess_actuator_interval_us=5 * SEC,
        prediction_ttl_us=3 * SEC,
    )
    model = PowerModel(kernel, cpu)
    actuator = PowerActuator(kernel)
    runtime = run_agent(kernel, model, actuator, schedule,
                        name="power-watchdog")

    kernel.run(until=120 * SEC)

    print("power watchdog ran for 120 simulated seconds")
    print(f"  completed batches : {workload.batches_completed}")
    print(f"  learning epochs   : {runtime.stats()['epochs']}")
    print(f"  actions taken     : {runtime.stats()['actuations']}")
    print(f"  alerts raised     : {len(actuator.alerts)}")
    print(f"  learned power band: {model._stats.mean:.1f}W "
          f"± {model._stats.std:.1f}W")
    runtime.terminate()
    print("terminated cleanly (SRE CleanUp path exercised)")


if __name__ == "__main__":
    main()
