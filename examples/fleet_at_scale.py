"""A rack-correlated telemetry failure hitting a heterogeneous fleet.

Simulates 24 nodes (3 racks × 8) running a mix of SmartOverclock,
SmartHarvest, and SmartMemory agents.  Halfway through, rack 0's
telemetry goes bad for a minute — every node in the rack starts reading
corrupt model inputs at once.  The report shows the paper's safeguards
holding at fleet scale: the burst lands as validation failures and
safeguard trips, not as SLO violations.

Run:  python examples/fleet_at_scale.py [workers]

Equivalent CLI:

    python -m repro fleet --nodes 24 --agent mixed --seconds 120 \
        --rack-size 8 --fault-racks 0 --fault-start 40 \
        --fault-duration 60 --workers 4
"""

import sys

from repro.experiments.driver import FleetDriver
from repro.fleet import FaultPlan, FleetConfig


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    config = FleetConfig(
        n_nodes=24,
        agent="mixed",
        seed=0,
        duration_s=120,
        rack_size=8,
        fault=FaultPlan(
            racks=(0,), start_s=40, duration_s=60, probability=0.9
        ),
    )
    aggregate = FleetDriver(config, workers=workers).run()
    print(aggregate.render())

    hit = [r for r in aggregate.results if r.rack == 0]
    spared = [r for r in aggregate.results if r.rack != 0]
    print()
    print(
        "rack 0 validation failures:",
        sum(r.stats["validation_failures"] for r in hit),
        "| other racks:",
        sum(r.stats["validation_failures"] for r in spared),
    )


if __name__ == "__main__":
    main()
