"""Regenerate every table and figure of the paper in one go.

This is the full evaluation driver.  Expect a few minutes of wall time;
pass ``--quick`` for a shortened (less converged) pass and
``--parallel`` to shard artifacts across worker processes.

Run:  python examples/reproduce_paper.py [--quick] [--parallel]

Equivalent CLI:  python -m repro reproduce-all [--quick] [--parallel]
"""

import sys

from repro.experiments.driver import reproduce_all


def _print_run(run):
    print(run.result.render())
    print(f"[{run.wall_seconds:.1f}s wall]\n", flush=True)


def main():
    reproduce_all(
        parallel="--parallel" in sys.argv,
        scale=0.33 if "--quick" in sys.argv else 1.0,
        on_result=_print_run,
    )


if __name__ == "__main__":
    main()
