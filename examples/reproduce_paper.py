"""Regenerate every table and figure of the paper in one go.

This is the full evaluation driver.  Expect a few minutes of wall time;
pass ``--quick`` for a shortened (less converged) pass.

Run:  python examples/reproduce_paper.py [--quick]
"""

import sys
import time

from repro.experiments import (
    fig1_overclock_vs_static,
    fig2_invalid_data,
    fig3_broken_model,
    fig4_delayed_predictions,
    fig5_actuator_safeguard,
    fig6_broken_model,
    fig6_delayed_predictions,
    fig6_invalid_data,
    fig7_smartmemory_vs_static,
    fig8_memory_safeguards,
    table1_taxonomy,
    table2_learning_agents,
)


def main():
    quick = "--quick" in sys.argv
    scale = 0.33 if quick else 1.0

    experiments = [
        (table1_taxonomy, {}),
        (table2_learning_agents, {}),
        (fig1_overclock_vs_static, {"seconds": int(900 * scale)}),
        (fig2_invalid_data, {"seconds": int(600 * scale)}),
        (fig3_broken_model, {"seconds": int(600 * scale)}),
        (fig4_delayed_predictions, {"seconds": int(300 * scale) + 200}),
        (fig5_actuator_safeguard, {"seconds": int(900 * scale)}),
        (fig6_invalid_data, {"seconds": int(240 * scale)}),
        (fig6_broken_model, {"seconds": int(240 * scale)}),
        (fig6_delayed_predictions, {"seconds": int(240 * scale)}),
        (fig7_smartmemory_vs_static, {"seconds": int(1500 * scale)}),
        (fig8_memory_safeguards, {"seconds": int(920 * scale)}),
    ]
    for experiment, kwargs in experiments:
        started = time.time()
        result = experiment(**kwargs)
        print(result.render())
        print(f"[{time.time() - started:.1f}s wall]\n")


if __name__ == "__main__":
    main()
