"""Scenario: SmartHarvest protecting a latency-critical primary VM.

Reproduces the §6.3 story interactively: the agent harvests idle cores
for an ElasticVM while an image-recognition primary (TailBench
image-dnn) serves traffic; halfway through, the model is *broken* to
always predict zero core need, and the safeguards contain the damage.

Run:  python examples/harvesting_under_failures.py
"""

from repro.agents.harvest import SmartHarvestAgent
from repro.core import SafeguardPolicy
from repro.node.faults import ModelBreaker
from repro.node.hypervisor import Hypervisor
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.tailbench import IMAGE_DNN, TailBenchWorkload

DURATION_S = 240
BREAK_AT_S = 120


def run(label, agent=True, policy=SafeguardPolicy.all_enabled(),
        break_model=False):
    kernel = Kernel()
    streams = RngStreams(seed=11)
    hypervisor = Hypervisor(kernel, n_cores=8, history_horizon_us=SEC)
    workload = TailBenchWorkload(
        kernel, hypervisor, streams.get("workload"), IMAGE_DNN
    ).start()
    agent_obj = None
    if agent:
        breaker = ModelBreaker(broken_value=0) if break_model else None
        agent_obj = SmartHarvestAgent(
            kernel, hypervisor, streams.get("agent"), policy=policy,
            breaker=breaker,
        ).start()
        if break_model:
            kernel.call_later(BREAK_AT_S * SEC, breaker.arm)
    kernel.run(until=DURATION_S * SEC)
    p99 = workload.performance().value
    harvested = hypervisor.snapshot().elastic_cus / SEC
    return label, p99, harvested, agent_obj


def main():
    print(f"image-dnn primary VM, {DURATION_S}s simulated per scenario\n")
    rows = [
        run("no harvesting (baseline)", agent=False),
        run("SmartHarvest, healthy model"),
        run("SmartHarvest, model breaks at 120s (guarded)",
            break_model=True),
        run("SmartHarvest, model breaks at 120s (UNGUARDED)",
            break_model=True, policy=SafeguardPolicy.none_enabled()),
    ]
    base_p99 = rows[0][1]
    print(f"{'scenario':48s} {'P99':>8s} {'increase':>9s} "
          f"{'harvested':>11s}")
    for label, p99, harvested, _agent in rows:
        print(
            f"{label:48s} {p99:6.1f}ms {100 * (p99 / base_p99 - 1):+7.1f}%"
            f" {harvested:8.0f}c-s"
        )
    guarded = rows[2][3].runtime.stats()
    print(
        f"\nguarded broken-model run: "
        f"{guarded['model_safeguard_triggers']} model-safeguard triggers, "
        f"{guarded['interceptions']} interceptions, "
        f"{guarded['mitigations']} mitigations"
    )
    print("the safeguards turned a broken model into a bounded QoS blip")


if __name__ == "__main__":
    main()
