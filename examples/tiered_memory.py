"""Scenario: SmartMemory managing a two-tier memory system (§5.3).

A zipf-popular working set drives a 512 MB (256-region) VM.  SmartMemory
learns per-region scan rates with Thompson sampling, classifies regions
hot/warm/cold, and offloads the cold tail to the slow tier while meeting
the 80%-local-access SLO.  A popularity shift mid-run shows the
safeguards recovering the placement.

Run:  python examples/tiered_memory.py
"""

import numpy as np

from repro.agents.memory import SmartMemoryAgent
from repro.node.memory import TieredMemory
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.traces import OBJECTSTORE_MEM, ZipfMemoryTrace

DURATION_S = 600
N_REGIONS = 256


def main():
    kernel = Kernel()
    streams = RngStreams(seed=3)
    memory = TieredMemory(
        kernel, n_regions=N_REGIONS, pages_per_region=512,
        rng=streams.get("memory"),
    )
    trace = ZipfMemoryTrace(
        kernel, memory, streams.get("trace"), OBJECTSTORE_MEM
    ).start()
    agent = SmartMemoryAgent(kernel, memory, streams.get("agent")).start()

    print("t(s)   tier1  remote%  resets(cum)  scan-period mix (s)")
    previous = memory.snapshot()
    for checkpoint in range(60, DURATION_S + 1, 60):
        kernel.run(until=checkpoint * SEC)
        snap = memory.snapshot()
        local = snap.local_accesses - previous.local_accesses
        remote = snap.remote_accesses - previous.remote_accesses
        previous = snap
        remote_pct = 100 * remote / (local + remote)
        periods = agent.model.chosen_periods_us() / 1e6
        mix = {
            f"{p:g}": int((periods == p).sum())
            for p in sorted(set(periods))
        }
        print(
            f"{checkpoint:4d}   {memory.n_local:5d}  {remote_pct:6.1f}%  "
            f"{snap.bit_resets:11,d}  {mix}"
        )

    stats = agent.runtime.stats()
    print(
        f"\nfinal placement: {memory.n_local}/{N_REGIONS} regions local, "
        f"{agent.model.cold_regions.size} cold (excluded from scanning)"
    )
    print(
        f"runtime: {stats['epochs']} epochs, "
        f"{stats['mitigations']} SLO mitigations, "
        f"{stats['interceptions']} intercepted plans"
    )
    agent.terminate()
    print(
        f"after CleanUp: {memory.n_local}/{N_REGIONS} regions local "
        "(everything restored to tier 1)"
    )


if __name__ == "__main__":
    main()
