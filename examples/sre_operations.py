"""Scenario: operating a node's agents as an SRE (§1, §4.1).

Three agents run on one node under a single :class:`AgentManager`.
One develops a hard actuator bug mid-run; the operator notices it in
the uniform health report and terminates it with the implementation-
agnostic CleanUp path while the other agents keep running.

Run:  python examples/sre_operations.py
"""

from repro.agents.harvest import SmartHarvestAgent
from repro.agents.overclock import SmartOverclockAgent
from repro.core import AgentManager
from repro.node.cpu import CpuModel
from repro.node.hypervisor import Hypervisor
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.objectstore import ObjectStoreWorkload
from repro.workloads.tailbench import MOSES, TailBenchWorkload


def main():
    kernel = Kernel()
    streams = RngStreams(seed=21)
    manager = AgentManager(kernel)

    # Agent 1: SmartOverclock on a KV-store VM.
    cpu = CpuModel(kernel, n_cores=8, nominal_freq_ghz=1.5,
                   min_freq_ghz=1.5, max_freq_ghz=2.3)
    ObjectStoreWorkload(kernel, cpu, streams.get("objectstore")).start()
    overclock = SmartOverclockAgent(
        kernel, cpu, streams.get("overclock")
    ).start()
    manager.register(overclock.runtime)

    # Agent 2: SmartHarvest next to a latency-critical VM.
    hypervisor = Hypervisor(kernel, n_cores=8, history_horizon_us=SEC)
    TailBenchWorkload(
        kernel, hypervisor, streams.get("moses"), MOSES
    ).start()
    harvest = SmartHarvestAgent(
        kernel, hypervisor, streams.get("harvest")
    ).start()
    manager.register(harvest.runtime)

    kernel.run(until=60 * SEC)
    print("t=60s, all healthy:")
    print(manager.render_report())

    # The harvest agent develops a hard actuation bug.
    def buggy_action(prediction):
        raise RuntimeError("null deref in core-assignment path")

    harvest.actuator.take_action = buggy_action
    kernel.run(until=90 * SEC)

    print("\nt=90s, after the harvest agent's actuator started crashing:")
    print(manager.render_report())
    health = manager.health("smart-harvest")
    print(f"\nsmart-harvest actuator crashes: {health.actuator_crashes}")

    # SRE action: terminate it without knowing anything about it.
    manager.terminate("smart-harvest")
    print("terminated smart-harvest via CleanUp; "
          f"primary VM has all {hypervisor.allocated:.0f} cores back")

    kernel.run(until=120 * SEC)
    print("\nt=120s, the remaining agent is unaffected:")
    print(manager.render_report())


if __name__ == "__main__":
    main()
