"""Figure 3: the model safeguard vs a broken always-overclock model."""

from conftest import run_and_print

from repro.experiments import fig3_broken_model


def test_fig3_broken_model(benchmark):
    result = run_and_print(benchmark, fig3_broken_model, seconds=600)
    cells = {
        (row["workload"], row["model_safeguard"]): row
        for row in result.rows
    }
    # Paper shape: on DiskSpeed the unguarded broken model's power
    # increase dwarfs the guarded one (268% vs 18% in the paper).
    guarded = cells[("DiskSpeed", "on")]["power_increase_pct"]
    unguarded = cells[("DiskSpeed", "off")]["power_increase_pct"]
    assert unguarded > 3 * max(guarded, 1.0)
    assert guarded < 40.0
