"""Figure 2: invalid IPS readings vs the data-validation safeguard."""

from conftest import run_and_print

from repro.experiments import fig2_invalid_data


def test_fig2_invalid_data(benchmark):
    result = run_and_print(
        benchmark, fig2_invalid_data, seconds=600,
        bad_fractions=(0.0, 0.05, 0.10, 0.20),
    )
    cells = {
        (row["bad_fraction"], row["validation"]): row for row in result.rows
    }
    # Paper shape: with validation the workload stays near optimal even
    # at 5%+ bad data; without it, performance degrades.
    assert cells[(0.05, "on")]["norm_perf"] > cells[(0.05, "off")]["norm_perf"]
    assert cells[(0.20, "on")]["norm_perf"] > cells[(0.20, "off")]["norm_perf"]
    assert cells[(0.05, "on")]["norm_perf"] > 0.90
