"""Table 1: taxonomy of production node agents."""

from conftest import run_and_print

from repro.experiments import table1_taxonomy


def test_table1_taxonomy(benchmark):
    result = run_and_print(benchmark, table1_taxonomy)
    assert sum(1 for _ in result.rows) == 6
    total = sum(row["count"] for row in result.rows)
    assert total == 77  # the paper's agent census
