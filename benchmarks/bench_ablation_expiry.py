"""Ablation: prediction expiry.

A prediction lands in the queue and then *both* loops stall (the model
mid-epoch, the actuator before its next dequeue).  When the actuator
wakes, the queued prediction is older than its TTL.  With expiry the
runtime maps it to the safe ``None`` action; without expiry the agent
acts on stale state — the §3.2 "decisions based on stale data" failure.
"""

from conftest import run_and_print

from repro.core.safeguards import SafeguardPolicy
from repro.experiments.common import ExperimentResult, OverclockScenario
from repro.experiments.overclock import _objectstore
from repro.node.faults import DelayInjector
from repro.sim.units import MS, SEC


def expiry_ablation(seconds: int = 30, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="ablation-expiry",
        title="Stale queued prediction under a double stall",
        columns=["expiry", "expired_predictions", "acted_on_stale"],
    )
    for enforce in (True, False):
        policy = SafeguardPolicy(enforce_expiry=enforce)
        model_delays = DelayInjector()
        actuator_delays = DelayInjector()
        # Epochs end at 1, 2, 3... s.  The actuator consumes the 1 s
        # prediction, then stalls for 6 s; the 2 s prediction sits in
        # the queue while the model also stalls mid-epoch-3.  At wake
        # (t=7 s) the queued prediction is 5 s old with a 2.5 s TTL.
        actuator_delays.add_window(at_us=1 * SEC, duration_us=6 * SEC)
        model_delays.add_window(at_us=2 * SEC + 50 * MS,
                                duration_us=10 * SEC)
        scenario = OverclockScenario.build(
            _objectstore, seed=seed, policy=policy,
            model_delays=model_delays, actuator_delays=actuator_delays,
        )
        stale_actions = {"count": 0}
        original = scenario.agent.actuator.take_action

        def spying_take_action(prediction, scenario=scenario,
                               stale_actions=stale_actions,
                               original=original):
            if prediction is not None and prediction.is_expired(
                scenario.kernel.now
            ):
                stale_actions["count"] += 1
            original(prediction)

        scenario.agent.actuator.take_action = spying_take_action
        scenario.run(seconds)
        result.add_row(
            expiry="on" if enforce else "off",
            expired_predictions=scenario.agent.runtime.stats()[
                "expired_predictions"
            ],
            acted_on_stale=stale_actions["count"],
        )
    return result


def test_ablation_expiry(benchmark):
    result = run_and_print(benchmark, expiry_ablation)
    cells = {row["expiry"]: row for row in result.rows}
    # With expiry: the stale prediction is detected and never acted on.
    assert cells["on"]["expired_predictions"] >= 1
    assert cells["on"]["acted_on_stale"] == 0
    # Without expiry: the agent acts on stale state.
    assert cells["off"]["expired_predictions"] == 0
    assert cells["off"]["acted_on_stale"] >= 1
