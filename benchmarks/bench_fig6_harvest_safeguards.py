"""Figure 6: SmartHarvest safeguards (three panels)."""

from conftest import run_and_print

from repro.experiments import (
    fig6_broken_model,
    fig6_delayed_predictions,
    fig6_invalid_data,
)


def test_fig6_left_invalid_data(benchmark):
    result = run_and_print(benchmark, fig6_invalid_data, seconds=240)
    cells = {
        (row["workload"], row["safeguards"]): row for row in result.rows
    }
    for workload in ("image-dnn", "moses"):
        guarded = cells[(workload, "on")]["p99_increase_pct"]
        unguarded = cells[(workload, "off")]["p99_increase_pct"]
        # Paper shape: ~40% unguarded vs <10% guarded.
        assert guarded < 10.0
        assert unguarded > 20.0


def test_fig6_middle_broken_model(benchmark):
    result = run_and_print(benchmark, fig6_broken_model, seconds=240)
    cells = {
        (row["workload"], row["safeguards"]): row for row in result.rows
    }
    for workload in ("image-dnn", "moses"):
        guarded = cells[(workload, "on")]["p99_increase_pct"]
        unguarded = cells[(workload, "off")]["p99_increase_pct"]
        # Paper shape: safeguards reduce the impact ~4x.
        assert unguarded > 2 * max(guarded, 1.0)


def test_fig6_right_delayed_predictions(benchmark):
    result = run_and_print(benchmark, fig6_delayed_predictions, seconds=240)
    cells = {
        (row["workload"], row["actuator"]): row for row in result.rows
    }
    for workload in ("image-dnn", "moses"):
        blocking = cells[(workload, "blocking")]
        non_blocking = cells[(workload, "non-blocking")]
        # Paper shape: the non-blocking design takes safe timeout actions
        # during stalls and keeps the P99 impact strictly lower.
        assert non_blocking["timeout_actions"] > 0
        assert blocking["timeout_actions"] == 0
        assert (
            non_blocking["p99_increase_pct"]
            <= blocking["p99_increase_pct"]
        )
