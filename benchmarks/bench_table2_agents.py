"""Table 2: on-node learning resource-control agents."""

from conftest import run_and_print

from repro.experiments import table2_learning_agents


def test_table2_learning_agents(benchmark):
    result = run_and_print(benchmark, table2_learning_agents)
    assert len(result.rows) == 6
    models = {row["model"] for row in result.rows}
    assert "Reinforcement learning" in models
    assert "Multi-armed bandits" in models
