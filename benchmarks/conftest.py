"""Benchmark bootstrap: src/ on the path plus a result printer.

Each bench file regenerates one paper table/figure via
``repro.experiments`` and prints the same rows/series the paper reports.
Benchmarks run a single round (the experiments are deterministic; there
is no run-to-run noise to average away, and each run simulates many
minutes of node time).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def run_and_print(benchmark, experiment, *args, **kwargs):
    """Benchmark one experiment function and print its rendering."""
    result = benchmark.pedantic(
        experiment, args=args, kwargs=kwargs, rounds=1, iterations=1,
    )
    print()
    print(result.render())
    return result
