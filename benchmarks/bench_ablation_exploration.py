"""Ablation: SmartOverclock exploration rate ε.

The paper fixes ε = 0.1.  This sweep shows the trade-off the choice
balances: no exploration cannot adapt (it may never discover
overclocking pays), while heavy exploration wastes power on random
frequencies.
"""

from conftest import run_and_print

from repro.agents.overclock import OverclockConfig
from repro.experiments.common import ExperimentResult, OverclockScenario
from repro.experiments.overclock import _objectstore


def exploration_ablation(
    seconds: int = 600, seed: int = 0, epsilons=(0.0, 0.05, 0.1, 0.3)
) -> ExperimentResult:
    result = ExperimentResult(
        name="ablation-exploration",
        title="Exploration rate on ObjectStore (always benefits)",
        columns=["epsilon", "p99_latency_ms", "mean_watts"],
    )
    for epsilon in epsilons:
        config = OverclockConfig(epsilon=epsilon)
        scenario = OverclockScenario.build(
            _objectstore, seed=seed, config=config
        ).run(seconds)
        result.add_row(
            epsilon=epsilon,
            p99_latency_ms=scenario.workload.performance().value,
            mean_watts=scenario.mean_watts(),
        )
    return result


def test_ablation_exploration(benchmark):
    result = run_and_print(benchmark, exploration_ablation)
    by_eps = {row["epsilon"]: row for row in result.rows}
    # Heavy exploration hurts the tail relative to the paper's 10%.
    assert by_eps[0.3]["p99_latency_ms"] >= by_eps[0.1]["p99_latency_ms"]
