"""Figure 1: SmartOverclock vs static frequencies (perf and power)."""

from conftest import run_and_print

from repro.experiments import fig1_overclock_vs_static


def test_fig1_overclock_vs_static(benchmark):
    result = run_and_print(benchmark, fig1_overclock_vs_static, seconds=900)
    cells = {
        (row["workload"], row["policy"]): row for row in result.rows
    }
    # Paper shape: SmartOverclock is within ~15% of static 2.3 GHz on the
    # Synthetic workload at substantially lower power increase.
    smart = cells[("Synthetic", "SmartOverclock")]
    static_hi = cells[("Synthetic", "static-2.3GHz")]
    assert smart["norm_perf"] > 1.25           # big win over nominal
    assert static_hi["norm_perf"] < smart["norm_perf"] * 1.20
    smart_extra = smart["norm_power"] - 1.0
    static_extra = static_hi["norm_power"] - 1.0
    assert static_extra > 1.7 * smart_extra    # ~2x power increase saved
    # DiskSpeed: no benefit, so SmartOverclock stays near nominal power.
    disk_smart = cells[("DiskSpeed", "SmartOverclock")]
    assert disk_smart["norm_power"] < 1.20
