"""Fleet driver: serial vs sharded simulation of the same fleet.

Pins the sharding contract at benchmark scale — the parallel run's
aggregate digest must equal the serial run's — and reports the wall
time of each path.  (Speedup is machine-dependent: a pool only helps
when spare cores exist; determinism must hold everywhere.)
"""

from conftest import run_and_print

from repro.experiments.driver import FleetDriver
from repro.fleet.config import FleetConfig

CONFIG = FleetConfig(n_nodes=32, agent="overclock", seed=0, duration_s=60)


def _run(workers):
    return FleetDriver(CONFIG, workers=workers).run()


def test_fleet_serial(benchmark):
    aggregate = run_and_print(benchmark, _run, 1)
    assert aggregate.n_nodes == 32


def test_fleet_sharded(benchmark):
    aggregate = run_and_print(benchmark, _run, 4)
    assert aggregate.n_nodes == 32
    # The headline contract: sharding never changes the physics.
    assert aggregate.digest() == _run(1).digest()
