"""Figure 4: non-blocking vs blocking Actuator under a 30s model stall."""

from conftest import run_and_print

from repro.experiments import fig4_delayed_predictions


def test_fig4_delayed_predictions(benchmark):
    result = run_and_print(benchmark, fig4_delayed_predictions, seconds=300)
    cells = {row["actuator"]: row for row in result.rows}
    # Paper shape: blocking wastes far more power during the stall
    # (36% vs 3% in the paper) and never takes timeout actions.
    assert (
        cells["blocking"]["power_increase_pct"]
        > 3 * cells["non-blocking"]["power_increase_pct"]
    )
    assert cells["blocking"]["timeout_actions"] == 0
    assert cells["non-blocking"]["timeout_actions"] > 0
