"""Figure 7: SmartMemory vs static access-bit scanning."""

from conftest import run_and_print

from repro.experiments import fig7_smartmemory_vs_static


def test_fig7_smartmemory_vs_static(benchmark):
    result = run_and_print(
        benchmark, fig7_smartmemory_vs_static, seconds=1500,
        warmup_seconds=300,
    )
    cells = {
        (row["workload"], row["policy"]): row for row in result.rows
    }
    for workload in ("ObjectStore", "SQL", "SpecJBB"):
        smart = cells[(workload, "SmartMemory")]
        slow = cells[(workload, "static-9.6s")]
        fast = cells[(workload, "static-300ms")]
        # Top plot: SmartMemory cuts access-bit resets vs max frequency.
        assert smart["reset_reduction_pct"] > 15.0
        # Middle plot: it still offloads a meaningful share of memory.
        assert smart["local_reduction_pct"] > 20.0
        # Bottom plot: min-frequency scanning attains the SLO the worst.
        assert slow["slo_attainment"] <= smart["slo_attainment"]
        assert slow["slo_attainment"] <= fast["slo_attainment"]
