"""Ablation: the Model/Actuator decoupling itself.

SOL's central design decision is running the Model and Actuator in
separately scheduled loops.  The "coupled" variant here is the blocking
strawman (the Actuator waits on the Model indefinitely), evaluated under
repeated model throttling — quantifying how much of the safety comes
from the split alone.
"""

from conftest import run_and_print

from repro.core.safeguards import SafeguardPolicy
from repro.experiments.common import ExperimentResult, HarvestScenario
from repro.experiments.harvest import TAILBENCH_WORKLOADS
from repro.node.faults import DelayInjector
from repro.sim.units import SEC


def coupling_ablation(seconds: int = 240, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="ablation-coupling",
        title="Decoupled vs coupled loops under repeated model throttling",
        columns=["design", "p99_latency_ms", "actions_taken",
                 "safe_timeout_actions"],
    )
    for coupled in (False, True):
        policy = SafeguardPolicy(non_blocking_actuator=not coupled)
        delays = DelayInjector()
        for i in range(1, 24):
            delays.add_window(at_us=i * 10 * SEC, duration_us=2 * SEC)
        scenario = HarvestScenario.build(
            TAILBENCH_WORKLOADS["image-dnn"], seed=seed, policy=policy,
            model_delays=delays,
        ).run(seconds)
        stats = scenario.agent.runtime.stats()
        result.add_row(
            design="coupled (blocking)" if coupled else "decoupled (SOL)",
            p99_latency_ms=scenario.workload.performance().value,
            actions_taken=stats["actuations"],
            safe_timeout_actions=stats["actuation_timeouts"],
        )
    return result


def test_ablation_coupling(benchmark):
    result = run_and_print(benchmark, coupling_ablation)
    cells = {row["design"]: row for row in result.rows}
    decoupled = cells["decoupled (SOL)"]
    coupled = cells["coupled (blocking)"]
    assert decoupled["safe_timeout_actions"] > 0
    assert coupled["safe_timeout_actions"] == 0
    assert decoupled["p99_latency_ms"] <= coupled["p99_latency_ms"] * 1.05
