"""Figure 5: the α actuator safeguard across long idle phases."""

from conftest import run_and_print

from repro.experiments import fig5_actuator_safeguard


def test_fig5_actuator_safeguard(benchmark):
    result = run_and_print(benchmark, fig5_actuator_safeguard, seconds=900)
    active_windows = [r for r in result.rows if r["safeguard_active"]]
    inactive_windows = [r for r in result.rows if not r["safeguard_active"]]
    # The safeguard engages during the long idle phase...
    assert active_windows, "safeguard never engaged"
    # ...pins the node at nominal while engaged...
    assert all(r["mean_freq_ghz"] == 1.5 for r in active_windows)
    # ...and the agent overclocks during at least part of the busy phase.
    assert any(r["mean_freq_ghz"] > 1.5 for r in inactive_windows)
