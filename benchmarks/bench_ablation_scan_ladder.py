"""Ablation: SmartMemory scan-frequency ladder size.

The paper's ladder has six geometric steps (300 ms … 9.6 s).  Fewer arms
converge faster but fit region rates more coarsely; this sweep measures
the reset/SLO trade-off.
"""

from conftest import run_and_print

from repro.agents.memory import MemoryConfig
from repro.experiments.common import ExperimentResult, MemoryScenario
from repro.experiments.memory import MEMORY_TRACES
from repro.sim.units import MS


LADDERS = {
    "2-arms": (300 * MS, 9600 * MS),
    "3-arms": (300 * MS, 1200 * MS, 9600 * MS),
    "6-arms (paper)": (
        300 * MS, 600 * MS, 1200 * MS, 2400 * MS, 4800 * MS, 9600 * MS,
    ),
}


def scan_ladder_ablation(
    seconds: int = 1200, seed: int = 0, n_regions: int = 192
) -> ExperimentResult:
    result = ExperimentResult(
        name="ablation-scan-ladder",
        title="Scan-period ladder size (SpecJBB trace)",
        columns=["ladder", "bit_resets", "slo_attainment"],
    )
    for name, periods in LADDERS.items():
        config = MemoryConfig(scan_periods_us=periods)
        scenario = MemoryScenario.build(
            MEMORY_TRACES["SpecJBB"],
            seed=seed,
            n_regions=n_regions,
            warmup_seconds=200,
            config=config,
        ).run(seconds)
        result.add_row(
            ladder=name,
            bit_resets=scenario.watcher.steady_state_resets(),
            slo_attainment=scenario.watcher.slo_attainment(),
        )
    return result


def test_ablation_scan_ladder(benchmark):
    result = run_and_print(benchmark, scan_ladder_ablation)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["slo_attainment"] > 0.5
