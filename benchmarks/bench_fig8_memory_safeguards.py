"""Figure 8: SmartMemory Model + Actuator safeguards under oscillation."""

from conftest import run_and_print

from repro.experiments import fig8_memory_safeguards


def test_fig8_memory_safeguards(benchmark):
    result = run_and_print(benchmark, fig8_memory_safeguards, seconds=920)
    cells = {row["safeguards"]: row for row in result.rows}
    # Paper shape: 66% attainment with no safeguards, 90% with all; each
    # safeguard individually helps, and "all" is the best.
    assert cells["none"]["slo_attainment"] < cells["all"]["slo_attainment"]
    assert (
        cells["actuator-only"]["slo_attainment"]
        >= cells["none"]["slo_attainment"]
    )
    assert (
        cells["model-only"]["slo_attainment"]
        >= cells["none"]["slo_attainment"]
    )
    assert cells["all"]["slo_attainment"] > 0.85
    assert cells["none"]["slo_attainment"] < 0.90
