"""Pytest bootstrap: make ``src/`` importable without an installed wheel.

``pip install -e .`` is the supported path; this shim only matters in
environments without build tooling (e.g. offline CI images).
"""

import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: spawns real orchestrator subprocesses (seconds, not ms); "
        "deselect with -m 'not slow'",
    )


@pytest.fixture(autouse=True)
def _isolated_repro_cache(monkeypatch, tmp_path):
    """Point the result cache at a per-test directory.

    ``default_cache_dir()`` falls back to ``./.repro-cache`` in the
    working directory, so any test exercising a cache-enabled code path
    without an explicit ``--cache-dir`` would otherwise pollute the
    repo checkout (and leak state between tests).  Tests that probe the
    environment handling itself still can ``setenv``/``delenv`` over
    this.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
