"""Pytest bootstrap: make ``src/`` importable without an installed wheel.

``pip install -e .`` is the supported path; this shim only matters in
environments without build tooling (e.g. offline CI images).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
